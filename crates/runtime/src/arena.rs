//! Gradient buffer arena: one reusable `Vec<f32>` per client.
//!
//! A federated round materializes one flattened gradient per participating
//! client. Allocating those `Vec<f32>`s fresh every round (the naive
//! pattern) costs an allocation + page-fault churn per client per round at
//! exactly the moment every worker thread is hot. The arena keeps one
//! buffer per client slot; the simulator takes buffers out at the start of
//! a round, lets clients write into them in place, hands them to the
//! attack/aggregation pipeline, and returns them when the round ends.

/// Per-slot reusable gradient buffers.
///
/// # Examples
///
/// ```
/// use sg_runtime::GradientArena;
///
/// let mut arena = GradientArena::new(4);
/// let mut buf = arena.take(2);
/// buf.clear();
/// buf.extend_from_slice(&[1.0, 2.0]);
/// arena.put(2, buf);
/// assert_eq!(arena.take(2), vec![1.0, 2.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GradientArena {
    buffers: Vec<Vec<f32>>,
}

impl GradientArena {
    /// Creates an arena with `slots` empty buffers.
    pub fn new(slots: usize) -> Self {
        Self { buffers: vec![Vec::new(); slots] }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.buffers.len()
    }

    /// Takes slot `i`'s buffer out of the arena (leaving an empty one).
    ///
    /// The returned buffer keeps whatever capacity it grew in earlier
    /// rounds; contents are unspecified — overwrite, don't read.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn take(&mut self, i: usize) -> Vec<f32> {
        let buffer = std::mem::take(&mut self.buffers[i]);
        sg_obs::counter_add(if buffer.capacity() > 0 { "arena.reuse" } else { "arena.fresh" }, 1);
        buffer
    }

    /// Returns a buffer to slot `i` for reuse next round.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn put(&mut self, i: usize, buffer: Vec<f32>) {
        self.buffers[i] = buffer;
    }

    /// Total capacity currently parked in the arena, in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.buffers.iter().map(|b| b.capacity() * std::mem::size_of::<f32>()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_keep_capacity_across_rounds() {
        let mut arena = GradientArena::new(2);
        let mut b = arena.take(0);
        b.resize(1024, 1.0);
        let ptr = b.as_ptr();
        arena.put(0, b);
        let b2 = arena.take(0);
        assert_eq!(b2.capacity(), 1024);
        assert_eq!(b2.as_ptr(), ptr, "same allocation reused");
    }

    #[test]
    fn resident_bytes_counts_capacity() {
        let mut arena = GradientArena::new(3);
        let mut b = arena.take(1);
        b.reserve_exact(100);
        arena.put(1, b);
        assert!(arena.resident_bytes() >= 400);
    }

    #[test]
    #[should_panic]
    fn out_of_range_slot_panics() {
        let mut arena = GradientArena::new(1);
        let _ = arena.take(5);
    }
}
