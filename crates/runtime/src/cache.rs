//! Memoized shared resources for scenario grids.
//!
//! A scenario grid runs many cells over the *same* generated inputs — every
//! Table I cell of one task trains on the same synthetic dataset, every
//! Fig. 6 skew level re-partitions the same corpus. Regenerating those
//! inputs per cell multiplies the grid's setup cost by the cell count.
//! [`ResourceCache`] memoizes any `K → V` construction behind `Arc`s so the
//! first cell to ask for a key pays the generation and every later cell —
//! on any thread — shares the result.
//!
//! # Concurrency
//!
//! The cache is safe to clone into concurrently running grid cells (clones
//! share state). Each key is generated **at most once**: concurrent
//! requests for the same key block on a per-key [`OnceLock`] rather than
//! racing duplicate generations, and the map lock is *not* held while a
//! value is being built, so generating one key never serializes requests
//! for other keys.
//!
//! # Determinism
//!
//! Memoization cannot perturb results: the cached value is produced by the
//! same pure constructor a cache-less cell would have called, and sharing
//! is by immutable `Arc`. The hit/miss counters are execution-order
//! independent too — every distinct key is exactly one miss (the request
//! that ran the constructor) and every other request is a hit — so they may
//! appear in reproducible reports.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

struct CacheInner<K, V> {
    slots: Mutex<HashMap<K, Arc<OnceLock<Arc<V>>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// A concurrent memoization cache handing out `Arc<V>` per key.
///
/// Cloning is cheap and clones share the underlying cache — move a clone
/// into each grid cell closure.
///
/// # Examples
///
/// ```
/// use sg_runtime::ResourceCache;
///
/// let cache: ResourceCache<(String, u64), Vec<u32>> = ResourceCache::new();
/// let a = cache.get_or_create(("mnist".into(), 7), || vec![1, 2, 3]);
/// let b = cache.get_or_create(("mnist".into(), 7), || unreachable!("cached"));
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!((cache.misses(), cache.hits()), (1, 1));
/// ```
pub struct ResourceCache<K, V> {
    inner: Arc<CacheInner<K, V>>,
}

impl<K, V> Clone for ResourceCache<K, V> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<K, V> std::fmt::Debug for ResourceCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResourceCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl<K, V> Default for ResourceCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> ResourceCache<K, V> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(CacheInner {
                slots: Mutex::new(HashMap::new()),
                hits: AtomicUsize::new(0),
                misses: AtomicUsize::new(0),
            }),
        }
    }

    /// Number of keys with a (started) generation.
    pub fn len(&self) -> usize {
        self.inner.slots.lock().expect("resource cache lock").len()
    }

    /// Whether no key has been requested yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests that found the value already generated.
    pub fn hits(&self) -> usize {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Requests that ran the constructor (one per distinct key).
    pub fn misses(&self) -> usize {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Publishes the cache's tallies into the `sg-obs` registry as
    /// `cache.<name>.{entries,hits,misses}` counters — the single
    /// telemetry sink for what used to be ad-hoc stderr lines. The
    /// counters are deterministic (see the module docs), so they are safe
    /// in reproducible summaries; a no-op while the registry is disabled.
    pub fn publish(&self, name: &str) {
        if !sg_obs::enabled() {
            return;
        }
        sg_obs::counter_set(&format!("cache.{name}.entries"), self.len() as u64);
        sg_obs::counter_set(&format!("cache.{name}.hits"), self.hits() as u64);
        sg_obs::counter_set(&format!("cache.{name}.misses"), self.misses() as u64);
    }
}

impl<K: Eq + Hash + Clone, V> ResourceCache<K, V> {
    /// Returns the cached value for `key`, running `make` to create it on
    /// first request. Concurrent requests for the same key wait for the one
    /// in-flight construction instead of duplicating it.
    pub fn get_or_create(&self, key: K, make: impl FnOnce() -> V) -> Arc<V> {
        let cell = {
            let mut slots = self.inner.slots.lock().expect("resource cache lock");
            Arc::clone(slots.entry(key).or_insert_with(|| Arc::new(OnceLock::new())))
        };
        // The map lock is released: `make` runs (or is awaited) on the
        // per-key cell only, so other keys stay fully concurrent.
        let mut built = false;
        let value = Arc::clone(cell.get_or_init(|| {
            built = true;
            Arc::new(make())
        }));
        if built {
            self.inner.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// All generated `(key, value)` entries, in unspecified order. Callers
    /// that put entries in a report must sort them first.
    pub fn entries(&self) -> Vec<(K, Arc<V>)> {
        let slots = self.inner.slots.lock().expect("resource cache lock");
        slots.iter().filter_map(|(k, cell)| cell.get().map(|v| (k.clone(), Arc::clone(v)))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_by_key_and_counts() {
        let cache: ResourceCache<u32, String> = ResourceCache::new();
        assert!(cache.is_empty());
        let a = cache.get_or_create(1, || "one".to_string());
        let b = cache.get_or_create(1, || panic!("must be cached"));
        let c = cache.get_or_create(2, || "two".to_string());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*c, "two");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn clones_share_the_cache() {
        let cache: ResourceCache<&'static str, u64> = ResourceCache::new();
        let clone = cache.clone();
        let a = cache.get_or_create("k", || 41);
        let b = clone.get_or_create("k", || 42);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*b, 41);
        assert_eq!(clone.len(), 1);
    }

    #[test]
    fn concurrent_requests_generate_once() {
        let cache: ResourceCache<u8, usize> = ResourceCache::new();
        let generations = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = cache.clone();
                let generations = Arc::clone(&generations);
                s.spawn(move || {
                    let v = cache.get_or_create(9, || {
                        generations.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so waiters really overlap.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        7
                    });
                    assert_eq!(*v, 7);
                });
            }
        });
        assert_eq!(generations.load(Ordering::SeqCst), 1, "constructor ran more than once");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
    }

    #[test]
    fn entries_reports_generated_values() {
        let cache: ResourceCache<u32, u32> = ResourceCache::new();
        cache.get_or_create(3, || 30);
        cache.get_or_create(1, || 10);
        let mut entries: Vec<(u32, u32)> = cache.entries().into_iter().map(|(k, v)| (k, *v)).collect();
        entries.sort_unstable();
        assert_eq!(entries, vec![(1, 10), (3, 30)]);
    }
}
