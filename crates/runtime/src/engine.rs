//! The engine handle a simulation runs on.

use std::sync::Arc;

use sg_math::ParallelExecutor;

use crate::pool::WorkerPool;

/// Execution engine: a shared [`WorkerPool`] plus the executor view of it
/// that numeric kernels consume.
///
/// Cloning an `Engine` is cheap (it shares the pool). The default —
/// [`Engine::sequential`] — makes every consumer run inline, bit-identical
/// to the pre-engine code path.
#[derive(Debug, Clone)]
pub struct Engine {
    pool: Arc<WorkerPool>,
}

impl Engine {
    /// Engine running everything inline on the calling thread.
    pub fn sequential() -> Self {
        Self { pool: Arc::new(WorkerPool::sequential()) }
    }

    /// Engine with a `threads`-wide pool; `0` means "all available cores".
    pub fn parallel(threads: usize) -> Self {
        Self { pool: Arc::new(WorkerPool::new(threads)) }
    }

    /// Engine on an existing pool (clones share workers). This is how a
    /// grid cell's engine is carved out of the grid's own [`WorkerPool`]:
    /// outer cell fan-out and inner kernel sharding then draw from one
    /// physical thread budget instead of multiplying pools.
    pub fn on_pool(pool: WorkerPool) -> Self {
        Self { pool: Arc::new(pool) }
    }

    /// The worker pool (per-item parallelism: client training, grid cells).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The chunk executor (coordinate-sharded kernels), for
    /// `Aggregator::set_executor`.
    pub fn executor(&self) -> Arc<dyn ParallelExecutor> {
        self.pool.clone()
    }

    /// A fresh pending-update buffer for asynchronous parameter-server
    /// schedules (see [`crate::pending`]). The buffer itself is engine-
    /// independent today; handing it out here keeps the seam in one place
    /// so a future streaming engine can back it with shared storage
    /// without touching the round drivers.
    pub fn update_buffer<M, P>(&self) -> crate::pending::UpdateBuffer<M, P> {
        crate::pending::UpdateBuffer::new()
    }

    /// Thread budget.
    pub fn parallelism(&self) -> usize {
        self.pool.parallelism()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::sequential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_engine_is_single_threaded() {
        assert_eq!(Engine::sequential().parallelism(), 1);
        assert_eq!(Engine::default().parallelism(), 1);
    }

    #[test]
    fn parallel_zero_resolves_to_cores() {
        assert!(Engine::parallel(0).parallelism() >= 1);
        assert_eq!(Engine::parallel(3).parallelism(), 3);
    }

    #[test]
    fn on_pool_shares_workers() {
        let pool = WorkerPool::new(3);
        let a = Engine::on_pool(pool.clone());
        let b = Engine::on_pool(pool);
        assert_eq!(a.parallelism(), 3);
        assert_eq!(b.pool().workers(), 2);
        // Both engines feed the same injector; a batch on either works.
        let mut out = vec![0.0f32; 8];
        a.executor().run_chunks(&mut out, 2, &|i, chunk| chunk.fill(i as f32));
        assert_eq!(out[7], 3.0);
    }

    #[test]
    fn executor_shares_the_pool() {
        let e = Engine::parallel(2);
        assert_eq!(e.executor().parallelism(), 2);
        let e2 = e.clone();
        assert_eq!(e2.parallelism(), 2);
    }
}
