//! Scenario-grid driver: many independent simulation cells, one report.
//!
//! The SignGuard paper's tables are (attack × aggregator × task) grids;
//! related work sweeps even wider matrices. A [`RunPlan`] declares the
//! cells, [`GridRunner`] executes them concurrently on a [`WorkerPool`],
//! and the [`GridReport`] returns outputs in plan order.
//!
//! # Two-level scheduling
//!
//! Each cell's [`CellContext`] carries an [`Engine`] carved from the
//! runner's own pool ([`CellContext::engine`]): a cell that builds its
//! simulator with `Simulator::with_engine(…, ctx.engine().clone())` shards
//! its *inner* work — client training, coordinate kernels, pairwise
//! distances — onto the same worker threads that fan the cells out. Both
//! levels feed one injector queue, so the grid keeps every thread busy
//! whether the bottleneck is many small cells (outer parallelism wins) or
//! a few huge ones (inner sharding wins), without ever oversubscribing the
//! configured thread budget. Nested batches are sound by the pool's batch
//! invariant (see `pool`): a submitter blocked on an inner batch helps
//! drain the shared queue instead of idling.
//!
//! # Seed schedule
//!
//! Each cell receives a seed derived from the plan seed with `SeedStream`,
//! assigned **in cell-index order before any cell runs**. Execution order
//! therefore cannot perturb any cell's randomness, and — because the
//! engine's determinism contract also covers nested execution — a plan
//! re-run at a different parallelism reproduces every cell bit for bit.
//! Seeds are consumed for *every* cell, including cells excluded through
//! [`RunOpts::skip`], so a partial re-run (checkpoint resume) hands each
//! executed cell exactly the seed it had in the full plan.
//!
//! # Completion hooks
//!
//! [`GridRunner::run_opts`] accepts an optional per-cell completion hook
//! ([`RunOpts::on_cell`]) that fires **in plan-index order** regardless of
//! which worker finished what when: results are parked in a reorder buffer
//! and flushed, under one lock, as soon as every lower-index executed cell
//! has completed. A checkpoint journal appended from the hook therefore
//! always holds a plan-order prefix of the executed cells, no matter how
//! the workers interleaved.

use std::collections::HashSet;
use std::sync::{Mutex, MutexGuard, PoisonError};

use sg_math::SeedStream;

use crate::engine::Engine;
use crate::pool::WorkerPool;

/// Context handed to a cell when it runs.
#[derive(Debug, Clone)]
pub struct CellContext {
    /// Position of the cell in the plan.
    pub index: usize,
    /// The cell's label (as given to [`RunPlan::cell`]).
    pub label: String,
    /// Seed from the plan's deterministic schedule.
    pub seed: u64,
    engine: Engine,
}

impl CellContext {
    /// The cell's execution engine, sharing the grid's worker pool — pass
    /// it to `Simulator::with_engine` to shard the cell's inner work
    /// across the same threads that run the cells (two-level parallelism).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

type CellFn<T> = Box<dyn FnOnce(&CellContext) -> T + Send>;

/// A declarative list of independent scenario cells.
///
/// `T` is whatever a cell produces — a `RunResult`, CSV rows, a scalar.
///
/// # Examples
///
/// ```
/// use sg_runtime::{GridRunner, RunPlan};
///
/// let mut plan = RunPlan::new(42);
/// for name in ["a", "b", "c"] {
///     plan.cell(name, move |ctx| format!("{name}:{}", ctx.seed % 7));
/// }
/// let report = GridRunner::new(2).run(plan);
/// assert_eq!(report.cells.len(), 3);
/// assert!(report.cells[0].output.starts_with("a:"));
/// ```
pub struct RunPlan<T> {
    seed: u64,
    cells: Vec<(String, CellFn<T>)>,
}

impl<T> std::fmt::Debug for RunPlan<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunPlan").field("seed", &self.seed).field("cells", &self.cells.len()).finish()
    }
}

impl<T> RunPlan<T> {
    /// Creates an empty plan rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed, cells: Vec::new() }
    }

    /// Appends a cell. The closure runs once, on some worker thread, with
    /// the cell's [`CellContext`] (which carries its schedule seed).
    pub fn cell(&mut self, label: impl Into<String>, run: impl FnOnce(&CellContext) -> T + Send + 'static) {
        self.cells.push((label.into(), Box::new(run)));
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The plan's root seed (cell seeds derive from it via `SeedStream`).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Cell labels in plan order (checkpoint fingerprinting reads these
    /// without running anything).
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.cells.iter().map(|(label, _)| label.as_str())
    }
}

/// One executed cell.
#[derive(Debug, Clone)]
pub struct CellResult<T> {
    /// Position of the cell in the plan.
    pub index: usize,
    /// The cell's label.
    pub label: String,
    /// Seed the cell ran with.
    pub seed: u64,
    /// What the cell returned.
    pub output: T,
}

/// All cell results, in plan order.
#[derive(Debug, Clone)]
pub struct GridReport<T> {
    /// Executed cells, in plan order.
    pub cells: Vec<CellResult<T>>,
    /// Seed the plan ran with.
    pub seed: u64,
}

impl<T> GridReport<T> {
    /// Looks up a cell by label (first match).
    pub fn get(&self, label: &str) -> Option<&CellResult<T>> {
        self.cells.iter().find(|c| c.label == label)
    }
}

/// A per-cell completion callback (see [`RunOpts::on_cell`]).
pub type CellHook<'hook, T> = Box<dyn FnMut(&CellResult<T>) + Send + 'hook>;

/// Options for [`GridRunner::run_opts`].
///
/// The default options reproduce [`GridRunner::run`]: no skipped cells, no
/// completion hook, no fault injection.
pub struct RunOpts<'hook, T> {
    /// Plan indices to *not* execute. Skipped cells still consume their
    /// seed-schedule slot and still count toward plan order, so the
    /// executed remainder behaves exactly as it would inside a full run —
    /// this is the resume half of a checkpoint/resume sweep (the caller
    /// hydrates skipped outputs from its journal).
    pub skip: HashSet<usize>,
    /// Fired once per executed cell, in plan-index order, after the cell
    /// completes (see the [module docs](self) on ordering). Runs under the
    /// runner's reorder lock: keep it short-ish (a journal append), and
    /// note a panic here propagates out of `run_opts` like a cell panic.
    pub on_cell: Option<CellHook<'hook, T>>,
    /// Fault injection for crash tests: after this many hook deliveries,
    /// the runner stops delivering (and stops starting new cells) and
    /// panics, simulating a crash mid-sweep with exactly `n` cells
    /// journaled.
    pub fault_after: Option<usize>,
}

impl<T> Default for RunOpts<'_, T> {
    fn default() -> Self {
        Self { skip: HashSet::new(), on_cell: None, fault_after: None }
    }
}

impl<T> std::fmt::Debug for RunOpts<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOpts")
            .field("skip", &self.skip.len())
            .field("on_cell", &self.on_cell.is_some())
            .field("fault_after", &self.fault_after)
            .finish()
    }
}

/// Reorder buffer shared by the in-flight cells of one `run_opts` call:
/// results park here until every lower executed position has completed,
/// then flush — delivering the hook — in plan order.
struct Collector<'hook, T> {
    /// One slot per *executed* cell, in plan order.
    slots: Vec<Option<CellResult<T>>>,
    /// Next executed position to flush.
    flushed: usize,
    on_cell: Option<CellHook<'hook, T>>,
    fault_after: Option<usize>,
    /// Set when the injected fault fires: cells not yet started return
    /// without running (the process is notionally dead).
    aborted: bool,
}

/// Locks tolerating poisoning: after an injected-fault panic the remaining
/// in-flight cells still deposit their (discarded) results.
fn lock_collector<'a, 'hook, T>(m: &'a Mutex<Collector<'hook, T>>) -> MutexGuard<'a, Collector<'hook, T>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Executes [`RunPlan`]s on a worker pool.
#[derive(Debug, Clone)]
pub struct GridRunner {
    pool: WorkerPool,
}

impl GridRunner {
    /// Creates a runner with a `parallelism`-wide pool (`0` = all cores).
    pub fn new(parallelism: usize) -> Self {
        Self { pool: WorkerPool::new(parallelism) }
    }

    /// Creates a runner on an existing pool.
    pub fn on_pool(pool: WorkerPool) -> Self {
        Self { pool }
    }

    /// Thread budget for cells.
    pub fn parallelism(&self) -> usize {
        self.pool.parallelism()
    }

    /// Runs every cell and collects outputs in plan order.
    pub fn run<T: Send>(&self, plan: RunPlan<T>) -> GridReport<T> {
        self.run_opts(plan, RunOpts::default())
    }

    /// Runs the plan's cells minus [`RunOpts::skip`], firing
    /// [`RunOpts::on_cell`] in plan order as executed cells complete.
    ///
    /// The report contains only the executed cells, still in plan order;
    /// skipped cells consume their seed slot but are absent from the
    /// output (the resume caller merges them back from its journal).
    ///
    /// # Panics
    ///
    /// Re-raises cell panics (like [`run`](Self::run)), hook panics, and
    /// the [`RunOpts::fault_after`] injected fault.
    pub fn run_opts<T: Send>(&self, plan: RunPlan<T>, opts: RunOpts<'_, T>) -> GridReport<T> {
        let plan_seed = plan.seed;
        // Every cell's engine shares this runner's pool: inner sharding
        // and outer fan-out draw from one thread budget.
        let engine = Engine::on_pool(self.pool.clone());
        // Seeds are fixed by cell index here, before dispatch — for every
        // cell, skipped or not: the schedule is part of the plan, not of
        // the execution (or of which subset of it re-runs).
        let mut stream = SeedStream::new(plan_seed);
        let jobs: Vec<(usize, CellContext, CellFn<T>)> = plan
            .cells
            .into_iter()
            .enumerate()
            .filter_map(|(index, (label, run))| {
                let seed = stream.next_seed();
                if opts.skip.contains(&index) {
                    return None;
                }
                Some((index, label, run, seed))
            })
            .enumerate()
            .map(|(pos, (index, label, run, seed))| {
                (pos, CellContext { index, label, seed, engine: engine.clone() }, run)
            })
            .collect();

        let collector = Mutex::new(Collector {
            slots: (0..jobs.len()).map(|_| None).collect(),
            flushed: 0,
            on_cell: opts.on_cell,
            fault_after: opts.fault_after,
            aborted: false,
        });
        self.pool.map(jobs, |_, (pos, ctx, run)| {
            if lock_collector(&collector).aborted {
                // The injected fault already "crashed" this run; cells
                // that had not started stay unexecuted.
                return;
            }
            // A *root* span: on a help-while-waiting pool this closure may
            // execute inline on a thread mid-way through another cell's
            // batch, and must not record nested under that cell's spans.
            // The span also feeds per-cell wall time into the trace and
            // the "most expensive cells" table (never the JSON report).
            let output = {
                let _cell_span = sg_obs::span_cell("cell", &ctx.label);
                run(&ctx)
            };
            let result = CellResult { index: ctx.index, label: ctx.label, seed: ctx.seed, output };
            let mut st = lock_collector(&collector);
            st.slots[pos] = Some(result);
            // Flush the contiguous completed prefix in plan order; the
            // flushing thread delivers hooks for other cells' results too.
            while st.flushed < st.slots.len() && st.slots[st.flushed].is_some() {
                let i = st.flushed;
                st.flushed += 1;
                let delivery = {
                    let Collector { slots, on_cell, .. } = &mut *st;
                    match on_cell.as_mut() {
                        Some(hook) => std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            hook(slots[i].as_ref().expect("flushed slot filled"))
                        })),
                        None => Ok(()),
                    }
                };
                if let Err(payload) = delivery {
                    // A panicking hook (e.g. a failed journal append that
                    // may have written a partial frame) must stop every
                    // further delivery: appending after the damage would
                    // corrupt the journal mid-file instead of leaving the
                    // recoverable torn tail the format promises.
                    st.aborted = true;
                    st.on_cell = None;
                    drop(st);
                    std::panic::resume_unwind(payload);
                }
                if st.fault_after == Some(st.flushed) {
                    st.aborted = true;
                    st.on_cell = None;
                    let delivered = st.flushed;
                    drop(st);
                    panic!("GridRunner: injected fault after {delivered} cell completions");
                }
            }
        });

        let st = collector.into_inner().unwrap_or_else(PoisonError::into_inner);
        GridReport { cells: st.slots.into_iter().flatten().collect(), seed: plan_seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_of_squares(n: usize) -> RunPlan<u64> {
        let mut plan = RunPlan::new(7);
        for i in 0..n {
            plan.cell(format!("cell-{i}"), move |ctx| ctx.seed.wrapping_mul(i as u64));
        }
        plan
    }

    #[test]
    fn outputs_in_plan_order_with_stable_seeds() {
        let seq = GridRunner::new(1).run(plan_of_squares(9));
        let par = GridRunner::new(4).run(plan_of_squares(9));
        assert_eq!(seq.cells.len(), 9);
        for (a, b) in seq.cells.iter().zip(&par.cells) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.label, b.label);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.output, b.output);
        }
    }

    #[test]
    fn seeds_follow_seed_stream() {
        let report = GridRunner::new(2).run(plan_of_squares(3));
        let mut stream = SeedStream::new(7);
        for cell in &report.cells {
            assert_eq!(cell.seed, stream.next_seed());
        }
    }

    #[test]
    fn lookup_by_label() {
        let report = GridRunner::new(1).run(plan_of_squares(4));
        assert_eq!(report.get("cell-2").expect("cell").index, 2);
        assert!(report.get("missing").is_none());
    }

    #[test]
    fn cell_engine_shares_runner_pool() {
        let runner = GridRunner::new(3);
        let mut plan = RunPlan::new(1);
        plan.cell("width", |ctx| ctx.engine().parallelism());
        assert_eq!(runner.run(plan).cells[0].output, 3);
    }

    #[test]
    fn cells_can_shard_inner_work_on_their_engine() {
        // Nested batches: every cell runs a chunked kernel on the same
        // pool that fans the cells out, at several thread budgets.
        for jobs in [1usize, 2, 4] {
            let mut plan = RunPlan::new(5);
            for len in [0usize, 1, 37, 200] {
                plan.cell(format!("len-{len}"), move |ctx| {
                    let mut out = vec![0.0f32; len];
                    ctx.engine().executor().run_chunks(&mut out, 8, &|i, chunk| {
                        for (j, x) in chunk.iter_mut().enumerate() {
                            *x = (i * 100 + j) as f32;
                        }
                    });
                    out
                });
            }
            let report = GridRunner::new(jobs).run(plan);
            for cell in &report.cells {
                for (k, &x) in cell.output.iter().enumerate() {
                    assert_eq!(x, ((k / 8) * 100 + k % 8) as f32, "jobs {jobs} cell {}", cell.label);
                }
            }
        }
    }

    #[test]
    fn empty_plan_is_fine() {
        let report = GridRunner::new(4).run(RunPlan::<()>::new(0));
        assert!(report.cells.is_empty());
    }

    #[test]
    fn plan_exposes_labels_and_seed() {
        let plan = plan_of_squares(3);
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.labels().collect::<Vec<_>>(), vec!["cell-0", "cell-1", "cell-2"]);
    }

    #[test]
    fn skipped_cells_keep_the_seed_schedule() {
        // Skipping cells must not shift the seeds of the cells that still
        // run — the resume contract.
        let full = GridRunner::new(1).run(plan_of_squares(8));
        for jobs in [1usize, 4] {
            let skip: HashSet<usize> = [0usize, 3, 4, 7].into_iter().collect();
            let opts = RunOpts { skip: skip.clone(), ..RunOpts::default() };
            let partial = GridRunner::new(jobs).run_opts(plan_of_squares(8), opts);
            assert_eq!(partial.cells.len(), 4, "jobs {jobs}");
            for cell in &partial.cells {
                assert!(!skip.contains(&cell.index));
                let reference = &full.cells[cell.index];
                assert_eq!(cell.seed, reference.seed, "jobs {jobs} cell {}", cell.index);
                assert_eq!(cell.output, reference.output, "jobs {jobs} cell {}", cell.index);
            }
        }
    }

    #[test]
    fn completion_hook_fires_in_plan_order() {
        for jobs in [1usize, 2, 4] {
            let seen = Mutex::new(Vec::new());
            let opts = RunOpts {
                on_cell: Some(Box::new(|c: &CellResult<u64>| {
                    seen.lock().expect("seen").push(c.index);
                })),
                ..RunOpts::default()
            };
            GridRunner::new(jobs).run_opts(plan_of_squares(9), opts);
            assert_eq!(seen.into_inner().expect("seen"), (0..9).collect::<Vec<_>>(), "jobs {jobs}");
        }
    }

    #[test]
    fn completion_hook_skips_skipped_cells_but_keeps_order() {
        let skip: HashSet<usize> = [1usize, 4].into_iter().collect();
        let seen = Mutex::new(Vec::new());
        let opts = RunOpts {
            skip,
            on_cell: Some(Box::new(|c: &CellResult<u64>| {
                seen.lock().expect("seen").push(c.index);
            })),
            fault_after: None,
        };
        GridRunner::new(3).run_opts(plan_of_squares(6), opts);
        assert_eq!(seen.into_inner().expect("seen"), vec![0, 2, 3, 5]);
    }

    #[test]
    fn hook_panic_stops_all_further_deliveries() {
        // A hook that dies (journal append failure) must not be invoked
        // again by surviving workers: later appends after a partial write
        // would corrupt the journal mid-file.
        use std::panic::{catch_unwind, AssertUnwindSafe};
        for jobs in [1usize, 4] {
            let seen = Mutex::new(Vec::new());
            let result = catch_unwind(AssertUnwindSafe(|| {
                let opts = RunOpts {
                    on_cell: Some(Box::new(|c: &CellResult<u64>| {
                        seen.lock().expect("seen").push(c.index);
                        assert!(c.index != 2, "hook dies at cell 2");
                    })),
                    ..RunOpts::default()
                };
                GridRunner::new(jobs).run_opts(plan_of_squares(9), opts)
            }));
            assert!(result.is_err(), "jobs {jobs}: hook panic must propagate");
            assert_eq!(
                seen.into_inner().expect("seen"),
                vec![0, 1, 2],
                "jobs {jobs}: no delivery may follow the failed one"
            );
        }
    }

    #[test]
    fn injected_fault_panics_after_exact_deliveries() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        for jobs in [1usize, 4] {
            let seen = Mutex::new(Vec::new());
            let result = catch_unwind(AssertUnwindSafe(|| {
                let opts = RunOpts {
                    on_cell: Some(Box::new(|c: &CellResult<u64>| {
                        seen.lock().expect("seen").push(c.index);
                    })),
                    fault_after: Some(3),
                    ..RunOpts::default()
                };
                GridRunner::new(jobs).run_opts(plan_of_squares(9), opts)
            }));
            assert!(result.is_err(), "jobs {jobs}: fault must panic");
            // Exactly the first three cells, in plan order, were delivered
            // before the "crash" — that's what a resume would find.
            assert_eq!(seen.into_inner().expect("seen"), vec![0, 1, 2], "jobs {jobs}");
        }
    }
}
