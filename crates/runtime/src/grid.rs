//! Scenario-grid driver: many independent simulation cells, one report.
//!
//! The SignGuard paper's tables are (attack × aggregator × task) grids;
//! related work sweeps even wider matrices. A [`RunPlan`] declares the
//! cells, [`GridRunner`] executes them concurrently on a [`WorkerPool`],
//! and the [`GridReport`] returns outputs in plan order.
//!
//! # Two-level scheduling
//!
//! Each cell's [`CellContext`] carries an [`Engine`] carved from the
//! runner's own pool ([`CellContext::engine`]): a cell that builds its
//! simulator with `Simulator::with_engine(…, ctx.engine().clone())` shards
//! its *inner* work — client training, coordinate kernels, pairwise
//! distances — onto the same worker threads that fan the cells out. Both
//! levels feed one injector queue, so the grid keeps every thread busy
//! whether the bottleneck is many small cells (outer parallelism wins) or
//! a few huge ones (inner sharding wins), without ever oversubscribing the
//! configured thread budget. Nested batches are sound by the pool's batch
//! invariant (see `pool`): a submitter blocked on an inner batch helps
//! drain the shared queue instead of idling.
//!
//! # Seed schedule
//!
//! Each cell receives a seed derived from the plan seed with `SeedStream`,
//! assigned **in cell-index order before any cell runs**. Execution order
//! therefore cannot perturb any cell's randomness, and — because the
//! engine's determinism contract also covers nested execution — a plan
//! re-run at a different parallelism reproduces every cell bit for bit.

use sg_math::SeedStream;

use crate::engine::Engine;
use crate::pool::WorkerPool;

/// Context handed to a cell when it runs.
#[derive(Debug, Clone)]
pub struct CellContext {
    /// Position of the cell in the plan.
    pub index: usize,
    /// The cell's label (as given to [`RunPlan::cell`]).
    pub label: String,
    /// Seed from the plan's deterministic schedule.
    pub seed: u64,
    engine: Engine,
}

impl CellContext {
    /// The cell's execution engine, sharing the grid's worker pool — pass
    /// it to `Simulator::with_engine` to shard the cell's inner work
    /// across the same threads that run the cells (two-level parallelism).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

type CellFn<T> = Box<dyn FnOnce(&CellContext) -> T + Send>;

/// A declarative list of independent scenario cells.
///
/// `T` is whatever a cell produces — a `RunResult`, CSV rows, a scalar.
///
/// # Examples
///
/// ```
/// use sg_runtime::{GridRunner, RunPlan};
///
/// let mut plan = RunPlan::new(42);
/// for name in ["a", "b", "c"] {
///     plan.cell(name, move |ctx| format!("{name}:{}", ctx.seed % 7));
/// }
/// let report = GridRunner::new(2).run(plan);
/// assert_eq!(report.cells.len(), 3);
/// assert!(report.cells[0].output.starts_with("a:"));
/// ```
pub struct RunPlan<T> {
    seed: u64,
    cells: Vec<(String, CellFn<T>)>,
}

impl<T> std::fmt::Debug for RunPlan<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunPlan").field("seed", &self.seed).field("cells", &self.cells.len()).finish()
    }
}

impl<T> RunPlan<T> {
    /// Creates an empty plan rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed, cells: Vec::new() }
    }

    /// Appends a cell. The closure runs once, on some worker thread, with
    /// the cell's [`CellContext`] (which carries its schedule seed).
    pub fn cell(&mut self, label: impl Into<String>, run: impl FnOnce(&CellContext) -> T + Send + 'static) {
        self.cells.push((label.into(), Box::new(run)));
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// One executed cell.
#[derive(Debug, Clone)]
pub struct CellResult<T> {
    /// Position of the cell in the plan.
    pub index: usize,
    /// The cell's label.
    pub label: String,
    /// Seed the cell ran with.
    pub seed: u64,
    /// What the cell returned.
    pub output: T,
}

/// All cell results, in plan order.
#[derive(Debug, Clone)]
pub struct GridReport<T> {
    /// Executed cells, in plan order.
    pub cells: Vec<CellResult<T>>,
    /// Seed the plan ran with.
    pub seed: u64,
}

impl<T> GridReport<T> {
    /// Looks up a cell by label (first match).
    pub fn get(&self, label: &str) -> Option<&CellResult<T>> {
        self.cells.iter().find(|c| c.label == label)
    }
}

/// Executes [`RunPlan`]s on a worker pool.
#[derive(Debug, Clone)]
pub struct GridRunner {
    pool: WorkerPool,
}

impl GridRunner {
    /// Creates a runner with a `parallelism`-wide pool (`0` = all cores).
    pub fn new(parallelism: usize) -> Self {
        Self { pool: WorkerPool::new(parallelism) }
    }

    /// Creates a runner on an existing pool.
    pub fn on_pool(pool: WorkerPool) -> Self {
        Self { pool }
    }

    /// Thread budget for cells.
    pub fn parallelism(&self) -> usize {
        self.pool.parallelism()
    }

    /// Runs every cell and collects outputs in plan order.
    pub fn run<T: Send>(&self, plan: RunPlan<T>) -> GridReport<T> {
        let plan_seed = plan.seed;
        // Every cell's engine shares this runner's pool: inner sharding
        // and outer fan-out draw from one thread budget.
        let engine = Engine::on_pool(self.pool.clone());
        // Seeds are fixed by cell index here, before dispatch: the
        // schedule is part of the plan, not of the execution.
        let mut stream = SeedStream::new(plan_seed);
        let jobs: Vec<(CellContext, CellFn<T>)> = plan
            .cells
            .into_iter()
            .enumerate()
            .map(|(index, (label, run))| {
                (CellContext { index, label, seed: stream.next_seed(), engine: engine.clone() }, run)
            })
            .collect();
        let cells = self.pool.map(jobs, |_, (ctx, run)| {
            let output = run(&ctx);
            CellResult { index: ctx.index, label: ctx.label, seed: ctx.seed, output }
        });
        GridReport { cells, seed: plan_seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_of_squares(n: usize) -> RunPlan<u64> {
        let mut plan = RunPlan::new(7);
        for i in 0..n {
            plan.cell(format!("cell-{i}"), move |ctx| ctx.seed.wrapping_mul(i as u64));
        }
        plan
    }

    #[test]
    fn outputs_in_plan_order_with_stable_seeds() {
        let seq = GridRunner::new(1).run(plan_of_squares(9));
        let par = GridRunner::new(4).run(plan_of_squares(9));
        assert_eq!(seq.cells.len(), 9);
        for (a, b) in seq.cells.iter().zip(&par.cells) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.label, b.label);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.output, b.output);
        }
    }

    #[test]
    fn seeds_follow_seed_stream() {
        let report = GridRunner::new(2).run(plan_of_squares(3));
        let mut stream = SeedStream::new(7);
        for cell in &report.cells {
            assert_eq!(cell.seed, stream.next_seed());
        }
    }

    #[test]
    fn lookup_by_label() {
        let report = GridRunner::new(1).run(plan_of_squares(4));
        assert_eq!(report.get("cell-2").expect("cell").index, 2);
        assert!(report.get("missing").is_none());
    }

    #[test]
    fn cell_engine_shares_runner_pool() {
        let runner = GridRunner::new(3);
        let mut plan = RunPlan::new(1);
        plan.cell("width", |ctx| ctx.engine().parallelism());
        assert_eq!(runner.run(plan).cells[0].output, 3);
    }

    #[test]
    fn cells_can_shard_inner_work_on_their_engine() {
        // Nested batches: every cell runs a chunked kernel on the same
        // pool that fans the cells out, at several thread budgets.
        for jobs in [1usize, 2, 4] {
            let mut plan = RunPlan::new(5);
            for len in [0usize, 1, 37, 200] {
                plan.cell(format!("len-{len}"), move |ctx| {
                    let mut out = vec![0.0f32; len];
                    ctx.engine().executor().run_chunks(&mut out, 8, &|i, chunk| {
                        for (j, x) in chunk.iter_mut().enumerate() {
                            *x = (i * 100 + j) as f32;
                        }
                    });
                    out
                });
            }
            let report = GridRunner::new(jobs).run(plan);
            for cell in &report.cells {
                for (k, &x) in cell.output.iter().enumerate() {
                    assert_eq!(x, ((k / 8) * 100 + k % 8) as f32, "jobs {jobs} cell {}", cell.label);
                }
            }
        }
    }

    #[test]
    fn empty_plan_is_fine() {
        let report = GridRunner::new(4).run(RunPlan::<()>::new(0));
        assert!(report.cells.is_empty());
    }
}
