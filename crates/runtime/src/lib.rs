//! **sg-runtime** — the parallel federated execution engine.
//!
//! Everything above this crate (the simulator, the experiment binaries, the
//! scenario grids) expresses *what* to compute; this crate decides *how* it
//! runs on the hardware:
//!
//! | module | contents |
//! |---|---|
//! | [`pool`] | [`WorkerPool`]: persistent worker pool with work-stealing `map` and the sharded-chunk executor |
//! | [`arena`] | [`GradientArena`]: per-client gradient buffers reused across rounds |
//! | [`engine`] | [`Engine`]: the handle a `Simulator` runs on (pool + executor) |
//! | [`grid`] | [`RunPlan`] → [`GridRunner`]: many independent scenario cells executed concurrently |
//! | [`cache`] | [`ResourceCache`]: memoized shared resources (datasets, tasks, partitions) for grid cells |
//! | [`pending`] | [`UpdateBuffer`]: pending client updates for async parameter-server schedules |
//!
//! # Threading model
//!
//! A [`WorkerPool`] with `parallelism = p > 1` spawns `p − 1` long-lived
//! worker threads **once**, at construction — no global thread pool, no
//! async runtime, no external dependencies. Every `map` / `run_chunks`
//! call becomes a batch of tasks on one shared injector queue: workers
//! pull tasks as they free up, and the submitting thread drains the same
//! queue instead of blocking, making it the `p`-th executor. This keeps
//! micro-calls — a pairwise-distance pass, one Weiszfeld iteration — at a
//! couple of mutex operations instead of a thread spawn/join per call.
//! A batch never returns before all of its tasks have finished (which is
//! what makes lending stack-borrowed gradients to the `'static` workers
//! sound), task panics are caught on the worker and re-raised on the
//! submitter after the batch drains, and the workers shut down and join
//! when the last pool clone (including executor handles held by
//! aggregators) drops. With `parallelism == 1` every code path
//! degenerates to an inline loop on the caller's thread — sequential
//! execution is the special case, not a separate implementation.
//!
//! Two parallel axes compose:
//!
//! 1. **Within a round** — clients of one round train concurrently
//!    ([`WorkerPool::map`]), and gradient-dimension work runs sharded
//!    through the [`sg_math::ParallelExecutor`] implementation on
//!    [`WorkerPool`]. The sharded aggregation rules are Mean, TrMean,
//!    Median and SignGuard (coordinate chunks of
//!    [`sg_math::vecops::REDUCE_BLOCK`]), plus the `O(n²·d)`
//!    pairwise-distance family — Krum/Multi-Krum and Bulyan shard the
//!    upper-triangular pair space (see [`sg_math::pairwise`]) and Bulyan's
//!    coordinate trim, and GeoMed shards its Weiszfeld inner loop
//!    (per-client distances + coordinate-chunked weighted mean).
//! 2. **Across scenarios** — [`GridRunner`] executes independent
//!    (attack × aggregator × partitioning) cells of a [`RunPlan`]
//!    concurrently. The two axes *compose*: each cell's
//!    [`CellContext`] carries an [`Engine`] carved from the grid's own
//!    pool, so a cell built with `Simulator::with_engine(…,
//!    ctx.engine().clone())` shards its inner work onto the same threads
//!    that fan the cells out. Both levels feed one injector queue — a
//!    submitter blocked on an inner batch helps drain the queue — which
//!    keeps the thread budget fixed and every thread busy whether the
//!    grid is many small cells or a few huge ones.
//!
//! Grid cells of one task share generated inputs through
//! [`ResourceCache`]: the first cell to request `(task, data_seed)` pays
//! the dataset generation, every later cell receives the same `Arc` —
//! with per-key at-most-once construction even under concurrent requests.
//!
//! # Determinism contract
//!
//! For a fixed seed, **every result is bit-identical at any parallelism**:
//!
//! * Randomness is never shared across workers. Each client owns its RNG
//!   stream (derived via `SeedStream`), and grid cells receive their seeds
//!   from the plan's seed schedule *in cell-index order before dispatch*,
//!   so execution order cannot perturb any stream.
//! * Work assignment only distributes *which thread* computes a value,
//!   never the order of floating-point operations inside one value:
//!   [`WorkerPool::map`] writes results by item index, and chunk kernels
//!   keep each output element's computation order fixed (see the
//!   fixed-tree contract in `sg_math::vecops`) — one whole pairwise
//!   distance, one whole coordinate accumulation, per chunk element.
//! * Reductions that cross chunk boundaries (norms, dots, distances)
//!   follow the fixed [`sg_math::vecops::REDUCE_BLOCK`] tree in both the
//!   sequential and the sharded implementation.
//!
//! The root-level `tests/runtime_determinism.rs` asserts this end to end —
//! simulator-level for SignGuard, Mean, TrMean, Krum/Multi-Krum, Bulyan
//! and GeoMed, and aggregator-level (exact output bits) for the pairwise
//! family — at thread counts `1, 2, 3, 8` by default (override with
//! `SG_THREADS`).

pub mod arena;
pub mod cache;
pub mod engine;
pub mod grid;
pub mod pending;
pub mod pool;

pub use arena::GradientArena;
pub use cache::ResourceCache;
pub use engine::Engine;
pub use grid::{CellContext, CellHook, CellResult, GridReport, GridRunner, RunOpts, RunPlan};
pub use pending::{PendingUpdate, UpdateBuffer};
pub use pool::WorkerPool;
