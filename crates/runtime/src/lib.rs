//! **sg-runtime** — the parallel federated execution engine.
//!
//! Everything above this crate (the simulator, the experiment binaries, the
//! scenario grids) expresses *what* to compute; this crate decides *how* it
//! runs on the hardware:
//!
//! | module | contents |
//! |---|---|
//! | [`pool`] | [`WorkerPool`]: scoped-thread worker pool with work-stealing `map` and the sharded-chunk executor |
//! | [`arena`] | [`GradientArena`]: per-client gradient buffers reused across rounds |
//! | [`engine`] | [`Engine`]: the handle a `Simulator` runs on (pool + executor) |
//! | [`grid`] | [`RunPlan`] → [`GridRunner`]: many independent scenario cells executed concurrently |
//!
//! # Threading model
//!
//! The engine is built on `std::thread::scope` — no global thread pool, no
//! async runtime, no external dependencies. A [`WorkerPool`] is a *budget*
//! (`parallelism` threads), not a set of live threads: each `map` /
//! `run_chunks` call spawns scoped workers, which lets borrowed data
//! (gradients, datasets, model replicas) flow into workers without `Arc`
//! gymnastics and guarantees no work outlives the call. With
//! `parallelism == 1` every code path degenerates to an inline loop on the
//! caller's thread — sequential execution is the special case, not a
//! separate implementation.
//!
//! Two parallel axes compose:
//!
//! 1. **Within a round** — clients of one round train concurrently
//!    ([`WorkerPool::map`]), and gradient-dimension work (mean / trimmed
//!    mean / SignGuard's norm + sign passes) runs sharded in
//!    [`sg_math::vecops::REDUCE_BLOCK`]-sized coordinate chunks through the
//!    [`sg_math::ParallelExecutor`] implementation on [`WorkerPool`].
//! 2. **Across scenarios** — [`GridRunner`] executes independent
//!    (attack × aggregator × partitioning) cells of a [`RunPlan`]
//!    concurrently, each cell being a full sequential-inside simulation.
//!
//! # Determinism contract
//!
//! For a fixed seed, **every result is bit-identical at any parallelism**:
//!
//! * Randomness is never shared across workers. Each client owns its RNG
//!   stream (derived via `SeedStream`), and grid cells receive their seeds
//!   from the plan's seed schedule *in cell-index order before dispatch*,
//!   so execution order cannot perturb any stream.
//! * Work assignment only distributes *which thread* computes a value,
//!   never the order of floating-point operations inside one value:
//!   [`WorkerPool::map`] writes results by item index, and chunk kernels
//!   keep each output coordinate's accumulation order fixed (see the
//!   fixed-tree contract in `sg_math::vecops`).
//! * Reductions that cross chunk boundaries (norms, dots) follow the fixed
//!   [`sg_math::vecops::REDUCE_BLOCK`] tree in both the sequential and the
//!   sharded implementation.
//!
//! The root-level `tests/runtime_determinism.rs` asserts this end to end:
//! a `GridRunner` run at `parallelism = N` reproduces the
//! `parallelism = 1` metrics bit for bit.

pub mod arena;
pub mod engine;
pub mod grid;
pub mod pool;

pub use arena::GradientArena;
pub use engine::Engine;
pub use grid::{CellContext, CellResult, GridReport, GridRunner, RunPlan};
pub use pool::WorkerPool;
