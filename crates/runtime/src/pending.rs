//! Pending-update buffer: the server-side seam for asynchronous schedules.
//!
//! A synchronous parameter server consumes every client update the moment
//! it arrives; an asynchronous one (stragglers, FedBuf-style buffered
//! aggregation) must *hold* arrived updates until the aggregation condition
//! triggers — enough updates buffered, or a timeout of the virtual clock.
//! [`UpdateBuffer`] is that holding area: a plain, deterministic FIFO of
//! [`PendingUpdate`]s with no locks and no wall-clock anywhere, so a
//! simulated async schedule stays bit-for-bit reproducible at any thread
//! count (the buffer is only ever touched from the round driver, never
//! from pool workers).
//!
//! The buffer is deliberately dumb: *when* to drain is the scheduler's
//! decision (`sg-fl`'s `ClientScheduler`), *what* the drained batch means
//! is the round pipeline's. Gradients inside the buffer keep their arena
//! allocations, so parking an update across server steps costs no copies.

/// One buffered client update awaiting aggregation.
///
/// `M` is caller-defined arrival metadata — the round pipeline stores the
/// model version the gradient was computed against, which is what turns
/// into per-message staleness at drain time.
///
/// `P` is the gradient payload type. It defaults to the flattened dense
/// form (`Vec<f32>`); callers that buffer compressed representations (e.g.
/// `sg-fl`'s round pipeline holding bit-packed sign+norm updates) plug in
/// their own payload — the buffer never inspects it.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingUpdate<M, P = Vec<f32>> {
    /// Originating client id.
    pub client: usize,
    /// The update payload (typically an arena-owned buffer).
    pub gradient: P,
    /// Arrival metadata (e.g. the model step the client trained against).
    pub meta: M,
}

/// A deterministic FIFO of client updates the server has received but not
/// yet aggregated.
///
/// # Examples
///
/// ```
/// use sg_runtime::{PendingUpdate, UpdateBuffer};
///
/// let mut buf: UpdateBuffer<usize> = UpdateBuffer::new();
/// buf.push(PendingUpdate { client: 3, gradient: vec![1.0], meta: 7 });
/// buf.push(PendingUpdate { client: 0, gradient: vec![2.0], meta: 8 });
/// assert_eq!(buf.len(), 2);
/// let batch = buf.drain();
/// assert_eq!(batch[0].client, 3, "arrival order preserved");
/// assert!(buf.is_empty());
/// assert_eq!(buf.high_water(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct UpdateBuffer<M, P = Vec<f32>> {
    updates: Vec<PendingUpdate<M, P>>,
    high_water: usize,
}

impl<M, P> UpdateBuffer<M, P> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { updates: Vec::new(), high_water: 0 }
    }

    /// Appends an arrived update (FIFO order).
    pub fn push(&mut self, update: PendingUpdate<M, P>) {
        sg_obs::counter_add("pending.arrivals", 1);
        self.updates.push(update);
        self.high_water = self.high_water.max(self.updates.len());
    }

    /// Number of buffered updates.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether the buffer holds no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Takes every buffered update, in arrival order, leaving the buffer
    /// empty. The drained `Vec` carries its allocation with it (the
    /// caller usually consumes it by value); the buffer itself restarts
    /// from an empty vector and regrows — a handful of pointer-sized
    /// elements per applied round, dwarfed by the gradients they point at.
    pub fn drain(&mut self) -> Vec<PendingUpdate<M, P>> {
        if !self.updates.is_empty() {
            sg_obs::counter_add("pending.drains", 1);
            sg_obs::histogram_record("pending.drain_batch", self.updates.len() as u64);
        }
        std::mem::take(&mut self.updates)
    }

    /// Largest number of updates ever buffered at once — a sizing
    /// diagnostic for async schedules (how far behind the server ran).
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_reuse() {
        let mut buf: UpdateBuffer<u32> = UpdateBuffer::new();
        for i in 0..5usize {
            buf.push(PendingUpdate { client: 4 - i, gradient: vec![i as f32], meta: i as u32 });
        }
        let batch = buf.drain();
        assert_eq!(batch.iter().map(|u| u.client).collect::<Vec<_>>(), vec![4, 3, 2, 1, 0]);
        assert!(buf.is_empty());
        // Buffer stays usable after a drain.
        buf.push(PendingUpdate { client: 9, gradient: vec![], meta: 0 });
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut buf: UpdateBuffer<()> = UpdateBuffer::new();
        assert_eq!(buf.high_water(), 0);
        for c in 0..3 {
            buf.push(PendingUpdate { client: c, gradient: vec![], meta: () });
        }
        let _ = buf.drain();
        buf.push(PendingUpdate { client: 0, gradient: vec![], meta: () });
        assert_eq!(buf.high_water(), 3, "peak survives drains");
    }
}
