//! Scoped-thread worker pool: per-item work stealing and sharded chunks.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

use sg_math::ParallelExecutor;

/// A thread budget for data-parallel work.
///
/// See the [crate docs](crate) for the threading model and determinism
/// contract. A pool with `parallelism() == 1` runs everything inline on
/// the calling thread.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    parallelism: usize,
}

impl WorkerPool {
    /// Creates a pool using `parallelism` threads; `0` means "all
    /// available cores".
    pub fn new(parallelism: usize) -> Self {
        let parallelism = if parallelism == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            parallelism
        };
        Self { parallelism }
    }

    /// The single-threaded pool.
    pub fn sequential() -> Self {
        Self { parallelism: 1 }
    }

    /// Number of threads this pool may use.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Applies `f(index, item)` to every item, returning results in item
    /// order.
    ///
    /// Items are dealt out work-stealing style (a worker takes the next
    /// pending item when free), which load-balances uneven items like
    /// client training steps. Results are placed by index, so the output —
    /// and, because items never share mutable state, the computation — is
    /// independent of which worker ran what.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if self.parallelism <= 1 || n <= 1 {
            return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        let workers = self.parallelism.min(n);
        std::thread::scope(|s| {
            for _ in 0..workers {
                let tx = tx.clone();
                let queue = &queue;
                let f = &f;
                s.spawn(move || {
                    loop {
                        let job = queue.lock().expect("worker pool queue poisoned").pop_front();
                        let Some((i, item)) = job else { break };
                        // A send can only fail if the receiver was dropped,
                        // which cannot happen while the scope is alive.
                        let _ = tx.send((i, f(i, item)));
                    }
                });
            }
        });
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter().map(|r| r.expect("worker pool lost a result")).collect()
    }
}

impl ParallelExecutor for WorkerPool {
    /// Runs chunk `i` over `out[i * chunk_len ..]`, distributing
    /// *contiguous ranges of chunks* across workers.
    ///
    /// The static contiguous split (instead of stealing) keeps the hot
    /// aggregation path free of queue traffic; chunks of one `run_chunks`
    /// call are uniform work, so balance comes from the split itself.
    fn run_chunks(&self, out: &mut [f32], chunk_len: usize, f: &(dyn Fn(usize, &mut [f32]) + Sync)) {
        assert!(chunk_len > 0, "run_chunks: zero chunk_len");
        let n_chunks = out.len().div_ceil(chunk_len);
        if self.parallelism <= 1 || n_chunks <= 1 {
            for (i, chunk) in out.chunks_mut(chunk_len).enumerate() {
                f(i, chunk);
            }
            return;
        }
        let workers = self.parallelism.min(n_chunks);
        let per_worker = n_chunks / workers;
        let extra = n_chunks % workers;
        std::thread::scope(|s| {
            let mut rest = out;
            let mut first_chunk = 0;
            for w in 0..workers {
                let count = per_worker + usize::from(w < extra);
                let elems = (count * chunk_len).min(rest.len());
                let (mine, tail) = rest.split_at_mut(elems);
                rest = tail;
                let first = first_chunk;
                first_chunk += count;
                s.spawn(move || {
                    for (j, chunk) in mine.chunks_mut(chunk_len).enumerate() {
                        f(first + j, chunk);
                    }
                });
            }
            debug_assert!(rest.is_empty());
        });
    }

    fn parallelism(&self) -> usize {
        self.parallelism
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_means_available_parallelism() {
        assert!(WorkerPool::new(0).parallelism() >= 1);
        assert_eq!(WorkerPool::sequential().parallelism(), 1);
    }

    #[test]
    fn map_preserves_item_order() {
        for threads in [1, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            let items: Vec<usize> = (0..37).collect();
            let out = pool.map(items, |i, x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..37).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.map(Vec::<u32>::new(), |_, x| x), Vec::<u32>::new());
        assert_eq!(pool.map(vec![9u32], |_, x| x + 1), vec![10]);
    }

    #[test]
    fn run_chunks_matches_sequential_executor() {
        use sg_math::SeqExecutor;
        let kernel = |i: usize, chunk: &mut [f32]| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = (i * 1000 + j) as f32;
            }
        };
        for len in [0usize, 1, 5, 64, 1000] {
            for chunk_len in [1usize, 3, 64, 2048] {
                let mut seq = vec![0.0f32; len];
                SeqExecutor.run_chunks(&mut seq, chunk_len, &kernel);
                for threads in [2, 3, 8] {
                    let mut par = vec![0.0f32; len];
                    WorkerPool::new(threads).run_chunks(&mut par, chunk_len, &kernel);
                    assert_eq!(seq, par, "len {len} chunk {chunk_len} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn map_load_balances_uneven_items() {
        // Mostly a smoke test: wildly uneven work items all complete and
        // land in the right slots.
        let pool = WorkerPool::new(4);
        let out = pool.map((0..16).collect::<Vec<usize>>(), |_, x| {
            let mut acc = 0u64;
            for k in 0..(x * 10_000) {
                acc = acc.wrapping_add(k as u64);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(i, *x);
        }
    }
}
