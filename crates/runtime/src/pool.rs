//! Persistent worker pool: long-lived threads fed through a shared
//! injector queue, with per-item work stealing and sharded chunks.
//!
//! # Threading model
//!
//! A [`WorkerPool`] with `parallelism = p > 1` spawns `p - 1` OS threads
//! **once**, at construction; the calling thread is the `p`-th executor.
//! Every [`map`](WorkerPool::map) / [`run_chunks`](ParallelExecutor::run_chunks)
//! call turns into a *batch* of lifetime-erased tasks pushed onto one
//! shared injector queue; workers pull tasks as they free up (natural work
//! stealing) and the submitting thread drains the same queue instead of
//! blocking, so micro-calls — a per-round pairwise-distance pass, one
//! Weiszfeld iteration — pay a couple of mutex operations instead of a
//! thread spawn/join per call. Clones share the same workers; the threads
//! shut down and are joined when the last clone (including executor
//! handles held by aggregators) drops.
//!
//! # Panic propagation
//!
//! A panic inside a task is caught on the worker, the rest of the batch
//! runs to completion, and the first payload is re-raised on the submitting
//! thread. Workers survive task panics, so the pool stays usable.
//!
//! # Safety
//!
//! Batch tasks borrow caller-stack data (gradients, output slices), which
//! requires erasing their lifetimes before they can sit in the `'static`
//! injector queue. Soundness hinges on one invariant, maintained by
//! `WorkerPool::run_batch`: **a batch submission never returns — normally
//! or by unwinding — before every task of the batch has finished running**,
//! so no erased borrow is ever dereferenced after its referent is gone.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use sg_math::ParallelExecutor;

/// A lifetime-erased unit of work queued on the injector.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// A unit of work still carrying its true borrow lifetime.
type ScopedTask<'env> = Box<dyn FnOnce() + Send + 'env>;

struct InjectorState {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

/// The queue workers pull from, shared by every pool clone and worker.
struct Injector {
    queue: Mutex<InjectorState>,
    /// Signaled when tasks are pushed or shutdown begins.
    ready: Condvar,
}

impl Injector {
    fn pop(&self) -> Option<Task> {
        self.queue.lock().expect("injector lock").tasks.pop_front()
    }
}

fn worker_loop(injector: &Injector) {
    loop {
        let task = {
            let mut st = injector.queue.lock().expect("injector lock");
            loop {
                if let Some(t) = st.tasks.pop_front() {
                    break Some(t);
                }
                if st.shutdown {
                    break None;
                }
                st = injector.ready.wait(st).expect("injector lock");
            }
        };
        match task {
            // Tasks catch their own panics (see `run_batch`), so the
            // worker thread itself never unwinds.
            Some(t) => t(),
            None => return,
        }
    }
}

/// Completion tracking for one batch: (unfinished tasks, first panic).
struct Batch {
    state: Mutex<(usize, Option<Box<dyn Any + Send>>)>,
    done: Condvar,
}

/// The shared live half of a pool: injector plus worker join handles.
/// Dropping the last reference shuts the workers down and joins them.
struct PoolCore {
    injector: Arc<Injector>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Drop for PoolCore {
    fn drop(&mut self) {
        self.injector.queue.lock().expect("injector lock").shutdown = true;
        self.injector.ready.notify_all();
        // The last pool handle can be dropped from inside one of the pool's
        // own workers (a task that took ownership of a clone); joining that
        // thread from itself would deadlock, so it is detached instead — it
        // still exits promptly via the shutdown flag above.
        let current = std::thread::current().id();
        for handle in self.handles.lock().expect("worker handles lock").drain(..) {
            if handle.thread().id() != current {
                let _ = handle.join();
            }
        }
    }
}

/// A persistent thread budget for data-parallel work.
///
/// See the [module docs](self) for the threading model, panic behavior and
/// determinism notes. A pool with `parallelism() == 1` spawns no threads
/// and runs everything inline on the calling thread; cloning shares the
/// worker threads.
#[derive(Clone)]
pub struct WorkerPool {
    parallelism: usize,
    core: Option<Arc<PoolCore>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("parallelism", &self.parallelism)
            .field("workers", &self.workers())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool using `parallelism` threads; `0` means "all
    /// available cores". For `parallelism > 1` this spawns
    /// `parallelism - 1` long-lived worker threads (the caller of each
    /// batch is the remaining executor).
    pub fn new(parallelism: usize) -> Self {
        let parallelism = if parallelism == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            parallelism
        };
        let core = (parallelism > 1).then(|| {
            let injector = Arc::new(Injector {
                queue: Mutex::new(InjectorState { tasks: VecDeque::new(), shutdown: false }),
                ready: Condvar::new(),
            });
            let handles = (0..parallelism - 1)
                .map(|i| {
                    let injector = Arc::clone(&injector);
                    std::thread::Builder::new()
                        .name(format!("sg-worker-{i}"))
                        .spawn(move || worker_loop(&injector))
                        .expect("spawn pool worker")
                })
                .collect();
            Arc::new(PoolCore { injector, handles: Mutex::new(handles) })
        });
        Self { parallelism, core }
    }

    /// The single-threaded pool (no worker threads; everything inline).
    pub fn sequential() -> Self {
        Self { parallelism: 1, core: None }
    }

    /// Number of threads this pool may use (workers + the caller).
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Number of live worker threads (`parallelism - 1`, or `0` for the
    /// sequential pool).
    pub fn workers(&self) -> usize {
        if self.core.is_some() {
            self.parallelism - 1
        } else {
            0
        }
    }

    /// Queues `tasks` on the injector and runs them to completion — on the
    /// workers and on the calling thread — before returning.
    ///
    /// # Panics
    ///
    /// If a task panics, the first payload is re-raised here after the
    /// whole batch has finished (see the [module docs](self)).
    fn run_batch<'env>(&self, tasks: Vec<ScopedTask<'env>>) {
        let core = self.core.as_ref().expect("run_batch on a sequential pool");
        let injector = &core.injector;
        if sg_obs::enabled() {
            sg_obs::counter_add("pool.batches", 1);
            sg_obs::counter_add("pool.tasks", tasks.len() as u64);
        }
        let batch = Arc::new(Batch { state: Mutex::new((tasks.len(), None)), done: Condvar::new() });
        let backlog = {
            let mut st = injector.queue.lock().expect("injector lock");
            let backlog = st.tasks.len();
            for task in tasks {
                let batch = Arc::clone(&batch);
                let wrapped: ScopedTask<'env> = Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(task));
                    let mut bs = batch.state.lock().expect("batch lock");
                    bs.0 -= 1;
                    if let Err(payload) = result {
                        bs.1.get_or_insert(payload);
                    }
                    if bs.0 == 0 {
                        batch.done.notify_all();
                    }
                });
                // SAFETY: only the lifetime is erased; the fat-pointer
                // layout is unchanged. The wrapped task may borrow from the
                // caller's stack ('env), and run_batch does not return —
                // normally or by unwinding — until the batch count hits
                // zero, i.e. until every wrapped task has finished, so no
                // erased borrow outlives its referent. (The code below the
                // push has no panic path before that wait: lock poisoning
                // cannot occur because tasks catch their own panics.)
                let wrapped: Task = unsafe { std::mem::transmute::<ScopedTask<'env>, Task>(wrapped) };
                st.tasks.push_back(wrapped);
            }
            backlog
        };
        injector.ready.notify_all();
        // Queue occupancy at submission, recorded outside the injector
        // lock so the registry mutex never stalls a worker pulling tasks.
        sg_obs::histogram_record("pool.queue_depth", backlog as u64);

        // Help while waiting: the submitting thread is one of the
        // `parallelism` executors, so it drains queued tasks (its own
        // batch's, or a concurrent batch's — whose submitter is itself
        // blocked, keeping those borrows alive) instead of blocking.
        loop {
            if batch.state.lock().expect("batch lock").0 == 0 {
                break;
            }
            match injector.pop() {
                Some(task) => task(),
                // Queue drained: our stragglers are running on workers.
                None => break,
            }
        }
        let mut bs = batch.state.lock().expect("batch lock");
        while bs.0 > 0 {
            bs = batch.done.wait(bs).expect("batch lock");
        }
        let panic = bs.1.take();
        drop(bs);
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    }

    /// Queues one long-lived, fire-and-forget task (e.g. a connection
    /// handler that owns its socket) on the injector and returns
    /// immediately.
    ///
    /// Unlike batch tasks, a detached task owns its data (`'static`) and
    /// nobody waits on it: a panic inside it is caught on the worker and
    /// counted (`pool.detached_panics`), never re-raised. Because dropping
    /// the last pool handle joins the workers, the owner of a detached
    /// task that can block indefinitely (a socket read) must unblock it —
    /// shut the socket down — before releasing its last pool clone, or the
    /// drop will wait forever.
    ///
    /// # Panics
    ///
    /// Panics on a sequential pool: there is no worker to run detached
    /// work, and running it inline would block the caller for the task's
    /// whole lifetime.
    pub fn submit_detached<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let core = self.core.as_ref().expect("submit_detached on a sequential pool");
        sg_obs::counter_add("pool.detached_tasks", 1);
        let wrapped: Task = Box::new(move || {
            if catch_unwind(AssertUnwindSafe(task)).is_err() {
                sg_obs::counter_add("pool.detached_panics", 1);
            }
        });
        core.injector.queue.lock().expect("injector lock").tasks.push_back(wrapped);
        core.injector.ready.notify_one();
    }

    /// Applies `f(index, item)` to every item, returning results in item
    /// order.
    ///
    /// Each item is one injector task, so a free worker takes the next
    /// pending item — which load-balances uneven items like client training
    /// steps. Results are placed by index, so the output — and, because
    /// items never share mutable state, the computation — is independent of
    /// which worker ran what.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if self.core.is_none() || n <= 1 {
            return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let f = &f;
        let tasks: Vec<ScopedTask<'_>> = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                let slot = &slots[i];
                Box::new(move || {
                    *slot.lock().expect("result slot lock") = Some(f(i, item));
                }) as ScopedTask<'_>
            })
            .collect();
        self.run_batch(tasks);
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("result slot lock").expect("worker pool lost a result"))
            .collect()
    }
}

impl ParallelExecutor for WorkerPool {
    /// Runs chunk `i` over `out[i * chunk_len ..]`, distributing
    /// *contiguous ranges of chunks* across the pool.
    ///
    /// One injector task per executor (not per chunk) keeps the hot
    /// aggregation path to a handful of queue operations; chunks of one
    /// `run_chunks` call are uniform work, so balance comes from the
    /// contiguous split itself.
    fn run_chunks(&self, out: &mut [f32], chunk_len: usize, f: &(dyn Fn(usize, &mut [f32]) + Sync)) {
        assert!(chunk_len > 0, "run_chunks: zero chunk_len");
        let n_chunks = out.len().div_ceil(chunk_len);
        if self.core.is_none() || n_chunks <= 1 {
            for (i, chunk) in out.chunks_mut(chunk_len).enumerate() {
                f(i, chunk);
            }
            return;
        }
        let shards = self.parallelism.min(n_chunks);
        let per_shard = n_chunks / shards;
        let extra = n_chunks % shards;
        let mut tasks: Vec<ScopedTask<'_>> = Vec::with_capacity(shards);
        let mut rest = out;
        let mut first_chunk = 0;
        for s in 0..shards {
            let count = per_shard + usize::from(s < extra);
            let elems = (count * chunk_len).min(rest.len());
            let (mine, tail) = rest.split_at_mut(elems);
            rest = tail;
            let first = first_chunk;
            first_chunk += count;
            tasks.push(Box::new(move || {
                for (j, chunk) in mine.chunks_mut(chunk_len).enumerate() {
                    f(first + j, chunk);
                }
            }));
        }
        debug_assert!(rest.is_empty());
        self.run_batch(tasks);
    }

    fn parallelism(&self) -> usize {
        self.parallelism
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_means_available_parallelism() {
        assert!(WorkerPool::new(0).parallelism() >= 1);
        assert_eq!(WorkerPool::sequential().parallelism(), 1);
        assert_eq!(WorkerPool::sequential().workers(), 0);
    }

    #[test]
    fn map_preserves_item_order() {
        for threads in [1, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            let items: Vec<usize> = (0..37).collect();
            let out = pool.map(items, |i, x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..37).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.map(Vec::<u32>::new(), |_, x| x), Vec::<u32>::new());
        assert_eq!(pool.map(vec![9u32], |_, x| x + 1), vec![10]);
    }

    #[test]
    fn run_chunks_matches_sequential_executor() {
        use sg_math::SeqExecutor;
        let kernel = |i: usize, chunk: &mut [f32]| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = (i * 1000 + j) as f32;
            }
        };
        for len in [0usize, 1, 5, 64, 1000] {
            for chunk_len in [1usize, 3, 64, 2048] {
                let mut seq = vec![0.0f32; len];
                SeqExecutor.run_chunks(&mut seq, chunk_len, &kernel);
                for threads in [2, 3, 8] {
                    let mut par = vec![0.0f32; len];
                    WorkerPool::new(threads).run_chunks(&mut par, chunk_len, &kernel);
                    assert_eq!(seq, par, "len {len} chunk {chunk_len} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn map_load_balances_uneven_items() {
        // Mostly a smoke test: wildly uneven work items all complete and
        // land in the right slots.
        let pool = WorkerPool::new(4);
        let out = pool.map((0..16).collect::<Vec<usize>>(), |_, x| {
            let mut acc = 0u64;
            for k in 0..(x * 10_000) {
                acc = acc.wrapping_add(k as u64);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(i, *x);
        }
    }

    // ---- persistent-pool lifecycle -------------------------------------

    #[test]
    fn pool_is_reused_across_many_rounds() {
        // One pool, many batches: the same worker threads serve every call
        // (no spawn per call), and results stay correct throughout.
        let pool = WorkerPool::new(4);
        assert_eq!(pool.workers(), 3);
        for round in 0..100usize {
            let out = pool.map((0..9).collect::<Vec<usize>>(), |_, x| x + round);
            assert_eq!(out, (round..round + 9).collect::<Vec<_>>());
            let mut buf = vec![0.0f32; 53];
            pool.run_chunks(&mut buf, 7, &|i, chunk| chunk.fill(i as f32));
            let expected: Vec<f32> = (0..53).map(|j| (j / 7) as f32).collect();
            assert_eq!(buf, expected);
        }
    }

    #[test]
    fn clones_share_workers_and_shutdown_is_graceful() {
        let a = WorkerPool::new(3);
        let b = a.clone();
        assert_eq!(b.workers(), 2);
        // Dropping one clone must not tear down the shared workers.
        drop(a);
        let out = b.map(vec![1u32, 2, 3], |_, x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
        // Dropping the last clone joins the workers; returning from this
        // test (instead of hanging) is the graceful-shutdown assertion.
        drop(b);
    }

    #[test]
    fn executor_handle_keeps_workers_alive() {
        let pool = WorkerPool::new(2);
        let exec: Arc<dyn ParallelExecutor> = Arc::new(pool.clone());
        drop(pool);
        let mut out = vec![0.0f32; 16];
        exec.run_chunks(&mut out, 2, &|i, chunk| chunk.fill(i as f32));
        assert_eq!(out[15], 7.0);
    }

    #[test]
    fn panic_in_map_item_propagates_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map((0..8).collect::<Vec<usize>>(), |_, x| {
                assert!(x != 5, "boom at {x}");
                x
            })
        }));
        assert!(result.is_err(), "panic must cross map");
        // The workers caught the panic and are still serving batches.
        assert_eq!(pool.map(vec![1u32, 2, 3], |_, x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn panic_in_chunk_kernel_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut out = vec![0.0f32; 64];
            pool.run_chunks(&mut out, 4, &|i, chunk| {
                assert!(i != 3, "kernel panic in chunk {i}");
                chunk.fill(1.0);
            });
        }));
        assert!(result.is_err(), "panic must cross run_chunks");
        let mut out = vec![0.0f32; 8];
        pool.run_chunks(&mut out, 2, &|i, chunk| chunk.fill(i as f32));
        assert_eq!(out, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn detached_tasks_run_and_panics_stay_on_the_worker() {
        let pool = WorkerPool::new(3);
        let (tx, rx) = std::sync::mpsc::channel::<u32>();
        let tx2 = tx.clone();
        pool.submit_detached(move || {
            tx.send(7).expect("send");
        });
        pool.submit_detached(|| panic!("detached panic must not escape"));
        pool.submit_detached(move || {
            tx2.send(8).expect("send");
        });
        let mut got: Vec<u32> =
            (0..2).map(|_| rx.recv_timeout(std::time::Duration::from_secs(10)).expect("recv")).collect();
        got.sort_unstable();
        assert_eq!(got, vec![7, 8]);
        // The panicking task never poisoned anything: batches still work.
        assert_eq!(pool.map(vec![1u32, 2], |_, x| x * 2), vec![2, 4]);
    }

    #[test]
    #[should_panic(expected = "sequential pool")]
    fn detached_on_sequential_pool_panics() {
        WorkerPool::sequential().submit_detached(|| {});
    }

    #[test]
    fn concurrent_batches_from_multiple_threads() {
        // Two OS threads submit batches to the same pool concurrently;
        // both complete with correct, independent results.
        let pool = WorkerPool::new(3);
        std::thread::scope(|s| {
            for offset in [0usize, 1000] {
                let pool = pool.clone();
                s.spawn(move || {
                    for _ in 0..20 {
                        let out = pool.map((0..12).collect::<Vec<usize>>(), |_, x| x + offset);
                        assert_eq!(out, (offset..offset + 12).collect::<Vec<_>>());
                    }
                });
            }
        });
    }
}
