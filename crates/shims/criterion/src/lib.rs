//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so this crate vendors the
//! API surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros — over a simple
//! wall-clock harness: per benchmark it auto-calibrates an iteration count,
//! collects `sample_size` timed samples and reports the median, min and max
//! per-iteration time. No statistical analysis, plots or baselines; the
//! numbers are honest medians good enough for A/B comparisons like
//! sequential vs. parallel rounds.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: usize, f: &mut F) {
    // Calibrate: grow the iteration count until one sample takes >= 1 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let samples = sample_size.max(2);
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let (min, max) = (per_iter[0], per_iter[per_iter.len() - 1]);
    let full = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    println!(
        "{full:<50} time: [{} {} {}]  ({} samples x {iters} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(max),
        samples,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into().id, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into().id, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (all reporting already happened inline).
    pub fn finish(self) {}
}

/// Top-level harness handle, one per benchmark binary.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 20, _criterion: self }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one("", &id.into().id, 20, &mut f);
        self
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` entry point for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_elapsed() {
        let mut b = Bencher { iters: 10, elapsed: Duration::ZERO };
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert_eq!(n, 10);
        assert!(b.elapsed > Duration::ZERO || n == 10);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("mean", 128).id, "mean/128");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        group.finish();
        assert!(ran);
    }
}
