//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of the `rand` 0.8 API it actually uses: [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`, `fill`), [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through SplitMix64
//! — deterministic, `Send`, and fast. It is **not** the same bit stream as
//! upstream `rand`'s ChaCha-based `StdRng`; every consumer in this workspace
//! only relies on determinism for a fixed seed, never on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (`[0, 1)` for floats, full range for integers, fair coin for `bool`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 mantissa resolution.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over a bounded range.
///
/// Mirrors `rand`'s trait of the same name so the blanket
/// `SampleRange<T> for Range<T>` impl drives type inference identically
/// (one applicable impl ⇒ the range's element type unifies with the
/// requested output type before float-literal fallback kicks in).
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                lo + (reject_sample(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}
uniform_uint!(usize, u64, u32, u16, u8);

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                ((lo as i128) + reject_sample(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return ((lo as i128) + rng.next_u64() as i128) as $t;
                }
                ((lo as i128) + reject_sample(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
uniform_int!(isize, i64, i32, i16, i8);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = hi - lo;
                assert!(span.is_finite(), "gen_range: span {lo}..{hi} overflows");
                // `lo + u * span` can round up to exactly `hi` when u is
                // the largest sub-1 draw; reject those draws to honor the
                // half-open contract (matches upstream rand).
                loop {
                    let u: $t = Standard::sample(rng);
                    let v = lo + u * span;
                    if v < hi {
                        return v;
                    }
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = hi - lo;
                assert!(span.is_finite(), "gen_range: span {lo}..={hi} overflows");
                let u: $t = Standard::sample(rng);
                lo + u * span
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Unbiased `[0, span)` sampling (widening-multiply rejection, Lemire 2019).
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span {
            return (m >> 64) as u64;
        }
        // Threshold test: accept unless in the biased low fringe.
        let t = span.wrapping_neg() % span;
        if lo >= t {
            return (m >> 64) as u64;
        }
    }
}

/// High-level sampling helpers, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p {p} out of [0,1]");
        let u: f64 = self.gen();
        u < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 `StdRng` bit stream — only determinism for
    /// a fixed seed is guaranteed, which is all this workspace relies on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [0x9E3779B97F4A7C15, 0x6A09E667F3BCC909, 0xBB67AE8584CAA73B, 0x3C6EF372FE94F82B];
            }
            Self { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let i = rng.gen_range(3..10usize);
            assert!((3..10).contains(&i));
            let j = rng.gen_range(0..=5usize);
            assert!(j <= 5);
            let f = rng.gen_range(-2.0..2.0f32);
            assert!((-2.0..2.0).contains(&f));
            let s = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(8);
        let _ = draw(&mut rng);
    }
}
