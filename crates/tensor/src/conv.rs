//! im2col / col2im lowering for 2-D convolution.
//!
//! Convolution forward becomes one GEMM per batch over the unfolded input;
//! the backward pass re-folds column gradients with [`col2im`]. This mirrors
//! how the reference PyTorch models execute their conv layers on CPU.

/// Geometry of a 2-D convolution (square stride / padding per axis pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Stride (both axes).
    pub stride: usize,
    /// Zero padding (both axes).
    pub padding: usize,
}

impl Conv2dSpec {
    /// Output height after convolution.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_h(&self) -> usize {
        let padded = self.in_h + 2 * self.padding;
        assert!(padded >= self.k_h, "conv: kernel height {} exceeds padded input {}", self.k_h, padded);
        (padded - self.k_h) / self.stride + 1
    }

    /// Output width after convolution.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_w(&self) -> usize {
        let padded = self.in_w + 2 * self.padding;
        assert!(padded >= self.k_w, "conv: kernel width {} exceeds padded input {}", self.k_w, padded);
        (padded - self.k_w) / self.stride + 1
    }

    /// Rows of the unfolded (im2col) matrix: `in_channels * k_h * k_w`.
    pub fn col_rows(&self) -> usize {
        self.in_channels * self.k_h * self.k_w
    }

    /// Columns of the unfolded matrix: `out_h * out_w`.
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }
}

/// Unfolds one image `[C, H, W]` (row-major) into a `[C*kh*kw, out_h*out_w]`
/// matrix written into `cols`.
///
/// # Panics
///
/// Panics if the buffer sizes do not match `spec`.
pub fn im2col(input: &[f32], spec: &Conv2dSpec, cols: &mut [f32]) {
    let (c, h, w) = (spec.in_channels, spec.in_h, spec.in_w);
    assert_eq!(input.len(), c * h * w, "im2col: input size mismatch");
    let (oh, ow) = (spec.out_h(), spec.out_w());
    assert_eq!(cols.len(), spec.col_rows() * spec.col_cols(), "im2col: cols size mismatch");
    let pad = spec.padding as isize;
    let stride = spec.stride;
    let n_cols = oh * ow;

    let mut row = 0usize;
    for ch in 0..c {
        let img = &input[ch * h * w..(ch + 1) * h * w];
        for ky in 0..spec.k_h {
            for kx in 0..spec.k_w {
                let out_row = &mut cols[row * n_cols..(row + 1) * n_cols];
                let mut col = 0usize;
                for oy in 0..oh {
                    let iy = (oy * stride) as isize + ky as isize - pad;
                    for ox in 0..ow {
                        let ix = (ox * stride) as isize + kx as isize - pad;
                        out_row[col] = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            img[iy as usize * w + ix as usize]
                        } else {
                            0.0
                        };
                        col += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Folds column gradients back onto an image gradient, accumulating into
/// `grad_input` (`[C, H, W]`, must be zeroed by the caller for a fresh
/// gradient).
///
/// # Panics
///
/// Panics if the buffer sizes do not match `spec`.
pub fn col2im(cols: &[f32], spec: &Conv2dSpec, grad_input: &mut [f32]) {
    let (c, h, w) = (spec.in_channels, spec.in_h, spec.in_w);
    assert_eq!(grad_input.len(), c * h * w, "col2im: grad size mismatch");
    let (oh, ow) = (spec.out_h(), spec.out_w());
    assert_eq!(cols.len(), spec.col_rows() * spec.col_cols(), "col2im: cols size mismatch");
    let pad = spec.padding as isize;
    let stride = spec.stride;
    let n_cols = oh * ow;

    let mut row = 0usize;
    for ch in 0..c {
        let img = &mut grad_input[ch * h * w..(ch + 1) * h * w];
        for ky in 0..spec.k_h {
            for kx in 0..spec.k_w {
                let in_row = &cols[row * n_cols..(row + 1) * n_cols];
                let mut col = 0usize;
                for oy in 0..oh {
                    let iy = (oy * stride) as isize + ky as isize - pad;
                    for ox in 0..ow {
                        let ix = (ox * stride) as isize + kx as isize - pad;
                        if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            img[iy as usize * w + ix as usize] += in_row[col];
                        }
                        col += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_3x3() -> Conv2dSpec {
        Conv2dSpec { in_channels: 1, in_h: 3, in_w: 3, k_h: 2, k_w: 2, stride: 1, padding: 0 }
    }

    #[test]
    fn output_geometry() {
        let s = Conv2dSpec { in_channels: 3, in_h: 32, in_w: 32, k_h: 3, k_w: 3, stride: 1, padding: 1 };
        assert_eq!(s.out_h(), 32);
        assert_eq!(s.out_w(), 32);
        let s2 = Conv2dSpec { stride: 2, ..s };
        assert_eq!(s2.out_h(), 16);
    }

    #[test]
    fn im2col_small_example() {
        // 3x3 input, 2x2 kernel, stride 1, no padding -> 4 patches.
        let input = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let spec = spec_3x3();
        let mut cols = vec![0.0; spec.col_rows() * spec.col_cols()];
        im2col(&input, &spec, &mut cols);
        // Patch top-left values (kernel position 0,0) across the 4 windows:
        assert_eq!(&cols[0..4], &[1.0, 2.0, 4.0, 5.0]);
        // Kernel position (1,1) across the 4 windows:
        assert_eq!(&cols[12..16], &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn im2col_with_padding_zero_fills() {
        let input = [1.0, 2.0, 3.0, 4.0];
        let spec = Conv2dSpec { in_channels: 1, in_h: 2, in_w: 2, k_h: 3, k_w: 3, stride: 1, padding: 1 };
        let mut cols = vec![0.0; spec.col_rows() * spec.col_cols()];
        im2col(&input, &spec, &mut cols);
        // Kernel offset (0,0) over the 4 outputs: top-left window sees padding.
        assert_eq!(&cols[0..4], &[0.0, 0.0, 0.0, 1.0]);
        // Center offset (1,1) sees the raw image.
        let center = 4 * spec.col_cols();
        assert_eq!(&cols[center..center + 4], &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y (adjoint test —
        // exactly what backprop correctness requires).
        use rand::Rng;
        let mut rng = sg_math::seeded_rng(17);
        let spec = Conv2dSpec { in_channels: 2, in_h: 5, in_w: 4, k_h: 3, k_w: 2, stride: 2, padding: 1 };
        let x: Vec<f32> =
            (0..spec.in_channels * spec.in_h * spec.in_w).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f32> = (0..spec.col_rows() * spec.col_cols()).map(|_| rng.gen_range(-1.0..1.0)).collect();

        let mut cols = vec![0.0; y.len()];
        im2col(&x, &spec, &mut cols);
        let lhs: f32 = cols.iter().zip(&y).map(|(a, b)| a * b).sum();

        let mut folded = vec![0.0; x.len()];
        col2im(&y, &spec, &mut folded);
        let rhs: f32 = x.iter().zip(&folded).map(|(a, b)| a * b).sum();

        assert!((lhs - rhs).abs() < 1e-3, "lhs={lhs} rhs={rhs}");
    }

    #[test]
    #[should_panic(expected = "input size mismatch")]
    fn im2col_bad_input_panics() {
        let spec = spec_3x3();
        let mut cols = vec![0.0; spec.col_rows() * spec.col_cols()];
        im2col(&[0.0; 4], &spec, &mut cols);
    }
}
