//! Weight-initialization schemes matching the PyTorch defaults the paper's
//! reference implementation relies on.

use rand::Rng;

/// Kaiming (He) uniform initialization: `U(-b, b)` with
/// `b = sqrt(6 / fan_in)` (gain for ReLU networks, `a = sqrt(5)` variant
/// folded into the caller-provided fan-in as PyTorch does for conv/linear).
pub fn kaiming_uniform<R: Rng + ?Sized>(rng: &mut R, n: usize, fan_in: usize) -> Vec<f32> {
    assert!(fan_in > 0, "kaiming_uniform: fan_in must be positive");
    let bound = (6.0 / fan_in as f64).sqrt() as f32;
    (0..n).map(|_| rng.gen_range(-bound..bound)).collect()
}

/// Xavier (Glorot) uniform initialization: `U(-b, b)` with
/// `b = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng + ?Sized>(rng: &mut R, n: usize, fan_in: usize, fan_out: usize) -> Vec<f32> {
    assert!(fan_in + fan_out > 0, "xavier_uniform: fans must be positive");
    let bound = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
    (0..n).map(|_| rng.gen_range(-bound..bound)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_math::seeded_rng;

    #[test]
    fn kaiming_within_bound() {
        let mut rng = seeded_rng(1);
        let fan_in = 64;
        let bound = (6.0f64 / fan_in as f64).sqrt() as f32;
        let w = kaiming_uniform(&mut rng, 10_000, fan_in);
        assert!(w.iter().all(|&x| x > -bound && x < bound));
        // Mean roughly zero.
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 0.01);
    }

    #[test]
    fn xavier_within_bound() {
        let mut rng = seeded_rng(2);
        let (fi, fo) = (100, 50);
        let bound = (6.0f64 / (fi + fo) as f64).sqrt() as f32;
        let w = xavier_uniform(&mut rng, 10_000, fi, fo);
        assert!(w.iter().all(|&x| x > -bound && x < bound));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = kaiming_uniform(&mut seeded_rng(3), 16, 8);
        let b = kaiming_uniform(&mut seeded_rng(3), 16, 8);
        assert_eq!(a, b);
    }
}
