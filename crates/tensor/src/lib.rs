//! Dense row-major tensors with the kernels needed for from-scratch neural
//! networks: matrix multiplication, im2col convolution lowering, and pooling.
//!
//! The SignGuard paper trains CNNs (MNIST-style), a ResNet-18 and a TextRNN
//! with PyTorch; this crate is the substrate replacing the tensor half of
//! that stack. Only `f32` is supported — the precision the federated
//! gradient pipeline uses end to end.
//!
//! # Examples
//!
//! ```
//! use sg_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

mod conv;
mod init;
mod matmul;
mod tensor;

pub use conv::{col2im, im2col, Conv2dSpec};
pub use init::{kaiming_uniform, xavier_uniform};
pub use tensor::Tensor;
