//! Cache-friendly GEMM kernels.
//!
//! All kernels accumulate into a caller-provided zeroed buffer. Loop order is
//! i-k-j so the innermost loop streams both `b` and `out` rows sequentially,
//! which is the standard scalar-GEMM layout the autovectorizer handles well.

/// `out[m×n] = a[m×k] @ b[k×n]`; `out` must be zero-filled on entry.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// `out[m×n] = a[m×k] @ b[n×k]^T`; `out` must be zero-filled on entry.
///
/// Both operands are traversed row-major, so this is the preferred kernel
/// when the transpose of `b` is what the math calls for (e.g. dense-layer
/// forward with weights stored `[out_features, in_features]`).
pub fn gemm_bt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            out[i * n + j] = acc;
        }
    }
}

/// `out[m×n] = a[k×m]^T @ b[k×n]`; `out` must be zero-filled on entry.
pub fn gemm_at(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_pi * b_pj;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    out[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        out
    }

    #[test]
    fn gemm_matches_naive() {
        let (m, k, n) = (5, 7, 4);
        let a: Vec<f32> = (0..m * k).map(|x| (x as f32).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|x| (x as f32).cos()).collect();
        let mut out = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut out);
        let want = naive(m, k, n, &a, &b);
        for (x, y) in out.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn gemm_bt_matches_naive() {
        let (m, k, n) = (3, 6, 5);
        let a: Vec<f32> = (0..m * k).map(|x| (x as f32) * 0.1).collect();
        let bt: Vec<f32> = (0..n * k).map(|x| (x as f32) * 0.2 - 1.0).collect();
        // Build b = bt^T explicitly for the naive reference.
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = bt[j * k + p];
            }
        }
        let mut out = vec![0.0; m * n];
        gemm_bt(m, k, n, &a, &bt, &mut out);
        let want = naive(m, k, n, &a, &b);
        for (x, y) in out.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn gemm_at_matches_naive() {
        let (m, k, n) = (4, 3, 6);
        let at: Vec<f32> = (0..k * m).map(|x| (x as f32) * 0.3 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|x| (x as f32) * 0.05).collect();
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = at[p * m + i];
            }
        }
        let mut out = vec![0.0; m * n];
        gemm_at(m, k, n, &at, &b, &mut out);
        let want = naive(m, k, n, &a, &b);
        for (x, y) in out.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }
    }
}
