//! The core [`Tensor`] type: a dynamically-shaped, contiguous, row-major
//! `f32` array.

use crate::matmul;

/// A dense row-major `f32` tensor with dynamic shape.
///
/// Data is always contiguous; views and strides are deliberately out of
/// scope — the neural-network layers copy instead, which keeps backprop
/// code straightforward to audit against the paper's math.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "Tensor::from_vec: data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self { shape: shape.to_vec(), data }
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Self { shape: shape.to_vec(), data: vec![0.0; shape.iter().product()] }
    }

    /// Creates a one-filled tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Self { shape: shape.to_vec(), data: vec![1.0; shape.iter().product()] }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self { shape: shape.to_vec(), data: vec![value; shape.iter().product()] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a reshaped copy sharing the same element order.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    pub fn reshape(&self, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(numel, self.data.len(), "reshape: {:?} -> {:?} changes element count", self.shape, shape);
        Self { shape: shape.to_vec(), data: self.data.clone() }
    }

    /// Element at 2-D index `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the index is out of bounds.
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        assert_eq!(self.ndim(), 2, "at2 on {}-D tensor", self.ndim());
        let (r, c) = (self.shape[0], self.shape[1]);
        assert!(i < r && j < c, "at2: index ({i},{j}) out of bounds ({r},{c})");
        self.data[i * c + j]
    }

    /// Sets the element at 2-D index `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the index is out of bounds.
    pub fn set2(&mut self, i: usize, j: usize, v: f32) {
        assert_eq!(self.ndim(), 2, "set2 on {}-D tensor", self.ndim());
        let c = self.shape[1];
        assert!(i < self.shape[0] && j < c, "set2: index out of bounds");
        self.data[i * c + j] = v;
    }

    /// Matrix product of two 2-D tensors.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul: lhs must be 2-D");
        assert_eq!(other.ndim(), 2, "matmul: rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul: inner dims {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        matmul::gemm(m, k, n, &self.data, &other.data, &mut out);
        Tensor::from_vec(out, &[m, n])
    }

    /// `self @ other^T` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the shared dimension differs.
    pub fn matmul_bt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul_bt: lhs must be 2-D");
        assert_eq!(other.ndim(), 2, "matmul_bt: rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_bt: shared dims {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        matmul::gemm_bt(m, k, n, &self.data, &other.data, &mut out);
        Tensor::from_vec(out, &[m, n])
    }

    /// `self^T @ other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the shared dimension differs.
    pub fn matmul_at(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul_at: lhs must be 2-D");
        assert_eq!(other.ndim(), 2, "matmul_at: rhs must be 2-D");
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_at: shared dims {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        matmul::gemm_at(m, k, n, &self.data, &other.data, &mut out);
        Tensor::from_vec(out, &[m, n])
    }

    /// Transposed copy of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose on {}-D tensor", self.ndim());
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor::from_vec(out, &[c, r])
    }

    /// Element-wise sum; shapes must match exactly.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "add: shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| a + b).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// Element-wise difference; shapes must match exactly.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "sub: shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| a - b).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// Element-wise (Hadamard) product; shapes must match exactly.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "mul: shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// Returns a copy scaled by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| x * s).collect() }
    }

    /// Applies `f` element-wise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&x| f64::from(x)).sum::<f64>() as f32
    }

    /// Adds `bias` (length = columns) to every row of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `bias.len()` differs from columns.
    pub fn add_row_bias(&self, bias: &[f32]) -> Tensor {
        assert_eq!(self.ndim(), 2, "add_row_bias on {}-D tensor", self.ndim());
        let (r, c) = (self.shape[0], self.shape[1]);
        assert_eq!(bias.len(), c, "add_row_bias: bias length mismatch");
        let mut out = self.data.clone();
        for i in 0..r {
            for j in 0..c {
                out[i * c + j] += bias[j];
            }
        }
        Tensor::from_vec(out, &[r, c])
    }

    /// Column sums of a 2-D tensor (used for bias gradients).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn col_sums(&self) -> Vec<f32> {
        assert_eq!(self.ndim(), 2, "col_sums on {}-D tensor", self.ndim());
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; c];
        for i in 0..r {
            for (o, &x) in out.iter_mut().zip(&self.data[i * c..(i + 1) * c]) {
                *o += x;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.ndim(), 2);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.at2(1, 2), 6.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_shape_panics() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn zeros_ones_full_eye() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[3]).sum(), 3.0);
        assert_eq!(Tensor::full(&[2], 2.5).data(), &[2.5, 2.5]);
        let i = Tensor::eye(3);
        assert_eq!(i.at2(0, 0), 1.0);
        assert_eq!(i.at2(0, 1), 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        assert_eq!(a.matmul(&Tensor::eye(4)).data(), a.data());
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|x| (x as f32) * 0.5).collect(), &[4, 3]);
        let direct = a.matmul_bt(&b);
        let explicit = a.matmul(&b.transpose());
        assert_eq!(direct.shape(), explicit.shape());
        for (x, y) in direct.data().iter().zip(explicit.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[3, 2]);
        let b = Tensor::from_vec((0..12).map(|x| (x as f32) * 0.25).collect(), &[3, 4]);
        let direct = a.matmul_at(&b);
        let explicit = a.transpose().matmul(&b);
        assert_eq!(direct.shape(), explicit.shape());
        for (x, y) in direct.data().iter().zip(explicit.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at2(2, 1), a.at2(1, 2));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
        assert_eq!(a.map(|x| x * x).data(), &[1.0, 4.0]);
    }

    #[test]
    fn axpy_in_place() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn bias_and_col_sums() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let biased = a.add_row_bias(&[10.0, 20.0]);
        assert_eq!(biased.data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(a.col_sums(), vec![4.0, 6.0]);
    }

    #[test]
    fn reshape_preserves_order() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = a.reshape(&[3, 2]);
        assert_eq!(b.data(), a.data());
        assert_eq!(b.shape(), &[3, 2]);
    }
}
