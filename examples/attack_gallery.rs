//! Attack gallery: run every attack from the paper against one defense and
//! print an accuracy table (a single row of the paper's Table I).
//!
//! ```sh
//! cargo run --release --example attack_gallery [defense]
//! # defense ∈ {mean, trmean, median, geomed, krum, bulyan, dnc,
//! #            signguard, signguard-sim, signguard-dist}
//! ```

use signguard::aggregators::{
    Aggregator, Bulyan, CoordinateMedian, DnC, GeoMed, Mean, MultiKrum, TrimmedMean,
};
use signguard::attacks::{
    Attack, ByzMean, LabelFlip, Lie, MinMax, MinSum, NoiseAttack, RandomAttack, SignFlip,
};
use signguard::core::SignGuard;
use signguard::fl::{tasks, FlConfig, Simulator};

fn build_defense(name: &str, n: usize, m: usize) -> Box<dyn Aggregator> {
    match name {
        "mean" => Box::new(Mean::new()),
        "trmean" => Box::new(TrimmedMean::new(m)),
        "median" => Box::new(CoordinateMedian::new()),
        "geomed" => Box::new(GeoMed::new()),
        "krum" => Box::new(MultiKrum::new(m, n - m)),
        "bulyan" => Box::new(Bulyan::new(m)),
        "dnc" => Box::new(DnC::new(m).with_subsample_dim(2000)),
        "signguard" => Box::new(SignGuard::plain(0)),
        "signguard-sim" => Box::new(SignGuard::sim(0)),
        "signguard-dist" => Box::new(SignGuard::dist(0)),
        other => panic!("unknown defense {other:?}"),
    }
}

fn attacks() -> Vec<(&'static str, Option<Box<dyn Attack>>)> {
    vec![
        ("No Attack", None),
        ("Random", Some(Box::new(RandomAttack::new()))),
        ("Noise", Some(Box::new(NoiseAttack::new()))),
        ("Label-flip", Some(Box::new(LabelFlip::new()))),
        ("ByzMean", Some(Box::new(ByzMean::new()))),
        ("Sign-flip", Some(Box::new(SignFlip::new()))),
        ("LIE", Some(Box::new(Lie::new()))),
        ("Min-Max", Some(Box::new(MinMax::new()))),
        ("Min-Sum", Some(Box::new(MinSum::new()))),
    ]
}

fn main() {
    let defense = std::env::args().nth(1).unwrap_or_else(|| "signguard-sim".to_string());
    let cfg = FlConfig { epochs: 6, ..FlConfig::default() };
    let (n, m) = (cfg.num_clients, cfg.byzantine_count());

    println!("Defense: {defense}  ({n} clients, {m} Byzantine, {} epochs)\n", cfg.epochs);
    println!("{:<12} {:>10}", "Attack", "Best acc");
    println!("{}", "-".repeat(23));
    for (name, attack) in attacks() {
        let gar = build_defense(&defense, n, m);
        let mut sim = Simulator::new(tasks::fashion_like(7), cfg.clone(), gar, attack);
        let r = sim.run();
        println!("{:<12} {:>9.1}%", name, 100.0 * r.best_accuracy);
    }
}
