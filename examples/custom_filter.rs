//! Extending SignGuard: build a custom configuration with the builder API
//! and inspect the filters on a hand-crafted round of gradients.
//!
//! Demonstrates the open "design more filters" direction from the paper's
//! conclusion: the `Filter` trait lets you compose new screens with the
//! existing norm / sign-cluster ones.
//!
//! ```sh
//! cargo run --release --example custom_filter
//! ```

use signguard::aggregators::Aggregator;
use signguard::core::{
    ClusteringBackend, Filter, NormFilter, SignClusterFilter, SignGuardBuilder, SimilarityFeature,
};

fn main() {
    // A synthetic round: 8 honest gradients (positive-leaning), one
    // sign-flipped attacker, one scaled-up attacker.
    let mut gradients: Vec<Vec<f32>> = (0..8)
        .map(|i| {
            (0..256)
                .map(|j| {
                    let base = if j % 5 == 0 { -0.4f32 } else { 0.7 };
                    base + 0.1 * ((i * 256 + j) as f32 * 0.61).sin()
                })
                .collect()
        })
        .collect();
    gradients.push(gradients[0].iter().map(|x| -x).collect()); // sign flip
    gradients.push(gradients[1].iter().map(|x| x * 40.0).collect()); // blow-up
    let norms: Vec<f32> = gradients.iter().map(|g| signguard::math::l2_norm(g)).collect();

    // Inspect the two paper filters individually.
    let mut norm_filter = NormFilter::new();
    let kept_norm = norm_filter.filter(&gradients, &norms);
    println!("norm filter keeps        : {kept_norm:?}");

    let mut sign_filter =
        SignClusterFilter::new(0.5, SimilarityFeature::None, ClusteringBackend::MeanShift, 3);
    let kept_sign = sign_filter.filter(&gradients, &norms);
    println!("sign-cluster filter keeps: {kept_sign:?}");

    let both: Vec<usize> = kept_norm.intersection(&kept_sign).copied().collect();
    println!("intersection (trusted)   : {both:?}");

    // A customized SignGuard: KMeans back-end, tighter norm band, 50%
    // coordinate sampling, cosine similarity feature.
    let mut custom = SignGuardBuilder::new()
        .norm_bounds(0.3, 2.0)
        .coord_fraction(0.5)
        .similarity(SimilarityFeature::Cosine)
        .clustering(ClusteringBackend::KMeans(2))
        .seed(7)
        .build();
    let out = custom.aggregate(&gradients);
    println!("\ncustom SignGuard selected: {:?}", out.selected.as_ref().expect("selection"));
    println!("aggregate norm           : {:.3}", signguard::math::l2_norm(&out.gradient));
    println!(
        "cosine(aggregate, honest): {:.3}",
        signguard::math::cosine_similarity(&out.gradient, &gradients[0])
    );
}
