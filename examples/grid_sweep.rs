//! Scenario-grid sweep: a 4-attack × 3-aggregator matrix executed
//! concurrently by the `sg-runtime` grid driver.
//!
//! ```sh
//! cargo run --release --example grid_sweep [-- jobs]
//! ```
//!
//! Each (attack, defense) pair is one cell of a [`RunPlan`]; the
//! [`GridRunner`] fans cells out across the worker pool and the report
//! comes back in plan order with a deterministic per-cell seed schedule —
//! rerunning at any parallelism reproduces the same numbers.

use signguard::aggregators::{Aggregator, Mean, TrimmedMean};
use signguard::attacks::{Attack, ByzMean, Lie, MinMax, SignFlip};
use signguard::core::SignGuard;
use signguard::fl::{tasks, FlConfig, Simulator};
use signguard::runtime::{GridRunner, RunPlan};

const ATTACKS: &[&str] = &["Sign-flip", "LIE", "ByzMean", "Min-Max"];
const DEFENSES: &[&str] = &["Mean", "TrMean", "SignGuard"];

fn build_attack(name: &str) -> Box<dyn Attack> {
    match name {
        "Sign-flip" => Box::new(SignFlip::new()),
        "LIE" => Box::new(Lie::new()),
        "ByzMean" => Box::new(ByzMean::new()),
        "Min-Max" => Box::new(MinMax::new()),
        other => panic!("unknown attack {other}"),
    }
}

fn build_defense(name: &str, m: usize, seed: u64) -> Box<dyn Aggregator> {
    match name {
        "Mean" => Box::new(Mean::new()),
        "TrMean" => Box::new(TrimmedMean::new(m)),
        "SignGuard" => Box::new(SignGuard::plain(seed)),
        other => panic!("unknown defense {other}"),
    }
}

fn main() {
    let jobs: usize = std::env::args().nth(1).map_or(0, |v| v.parse().expect("jobs: a number"));
    // A strong adversary: 30% Byzantine colluding with full knowledge.
    let cfg = FlConfig {
        num_clients: 10,
        byzantine_fraction: 0.3,
        epochs: 3,
        batch_size: 8,
        learning_rate: 0.05,
        ..FlConfig::default()
    };
    let m = cfg.byzantine_count();

    let mut plan: RunPlan<(f32, f32)> = RunPlan::new(cfg.seed);
    for attack in ATTACKS {
        for defense in DEFENSES {
            let cfg = cfg.clone();
            plan.cell(format!("{attack} vs {defense}"), move |ctx| {
                let task = tasks::mlp_task(ctx.seed ^ 0x5eed);
                let gar = build_defense(defense, m, ctx.seed);
                let cfg = FlConfig { seed: ctx.seed, ..cfg };
                let mut sim = Simulator::new(task, cfg, gar, Some(build_attack(attack)));
                let r = sim.run();
                (r.best_accuracy, r.selection.malicious_rate())
            });
        }
    }
    assert!(plan.len() >= 12, "grid must cover at least 12 cells");

    let runner = GridRunner::new(jobs);
    println!(
        "grid_sweep: {} cells ({} attacks x {} defenses), {} workers\n",
        plan.len(),
        ATTACKS.len(),
        DEFENSES.len(),
        runner.parallelism()
    );
    let report = runner.run(plan);

    print!("{:<12}", "attack");
    for d in DEFENSES {
        print!("{d:>12}");
    }
    println!();
    let mut cells = report.cells.iter();
    for attack in ATTACKS {
        print!("{attack:<12}");
        for _ in DEFENSES {
            let cell = cells.next().expect("full grid");
            print!("{:>11.1}%", 100.0 * cell.output.0);
        }
        println!();
    }

    // The defense headline: the synthetic task is easy enough that accuracy
    // alone saturates, so report what the filter actually did — how often
    // malicious updates made it past SignGuard (Table II's M column).
    println!();
    for attack in ATTACKS {
        let cell = report.get(&format!("{attack} vs SignGuard")).expect("cell");
        println!("{attack:<12} SignGuard accepted {:>5.1}% of malicious updates", 100.0 * cell.output.1);
    }
}
