//! Non-IID federation (paper Fig. 6): vary the skewness parameter `s` of
//! the sort-and-partition split and compare defenses under the ByzMean
//! attack.
//!
//! ```sh
//! cargo run --release --example noniid_federation
//! ```

use signguard::aggregators::{Aggregator, MultiKrum, TrimmedMean};
use signguard::attacks::ByzMean;
use signguard::core::SignGuard;
use signguard::data::partition_noniid;
use signguard::data::PartitionStats;
use signguard::fl::{tasks, FlConfig, Partitioning, Simulator};

fn main() {
    let base = FlConfig { epochs: 6, ..FlConfig::default() };
    let (n, m) = (base.num_clients, base.byzantine_count());

    // Show how s controls label skew.
    println!("Partition skew (labels per client at each s):");
    for &s in &[0.3f32, 0.5, 0.8] {
        let task = tasks::fashion_like(11);
        let mut rng = signguard::math::seeded_rng(1);
        let parts = partition_noniid(&task.train, n, s, &mut rng);
        let stats = PartitionStats::compute(&task.train, &parts);
        let mean_labels: f32 =
            stats.distinct_labels.iter().sum::<usize>() as f32 / stats.distinct_labels.len() as f32;
        println!(
            "  s={s:.1}: mean distinct labels/client = {mean_labels:.1}, max-share = {:.2}",
            stats.mean_max_share
        );
    }

    println!("\nBest accuracy under ByzMean at each skew level:");
    println!("{:<16} {:>8} {:>8} {:>8}", "Defense", "s=0.3", "s=0.5", "s=0.8");
    type DefenseCtor = fn(usize, usize) -> Box<dyn Aggregator>;
    let defenses: Vec<(&str, DefenseCtor)> = vec![
        ("TrMean", |_n, m| Box::new(TrimmedMean::new(m))),
        ("Multi-Krum", |n, m| Box::new(MultiKrum::new(m, n - m))),
        ("SignGuard-Sim", |_n, _m| Box::new(SignGuard::sim(0))),
    ];
    for (name, make) in defenses {
        let mut row = format!("{name:<16}");
        for &s in &[0.3f32, 0.5, 0.8] {
            let cfg = FlConfig { partitioning: Partitioning::NonIid { s }, ..base.clone() };
            let mut sim =
                Simulator::new(tasks::fashion_like(11), cfg, make(n, m), Some(Box::new(ByzMean::new())));
            let r = sim.run();
            row.push_str(&format!(" {:>7.1}%", 100.0 * r.best_accuracy));
        }
        println!("{row}");
    }
}
