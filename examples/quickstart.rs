//! Quickstart: train a federated model under the Min-Max attack
//! (Shejwalkar & Houmansadr), comparing the undefended mean against
//! SignGuard.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use signguard::aggregators::Mean;
use signguard::attacks::MinMax;
use signguard::core::SignGuard;
use signguard::fl::{tasks, FlConfig, Simulator};

fn main() {
    let cfg = FlConfig { epochs: 10, learning_rate: 0.05, ..FlConfig::default() };
    println!(
        "Federated setup: {} clients, {} Byzantine, {} epochs",
        cfg.num_clients,
        cfg.byzantine_count(),
        cfg.epochs
    );

    // Baseline: no attack, plain mean aggregation.
    let mut baseline = Simulator::new(tasks::fashion_like(42), cfg.clone(), Box::new(Mean::new()), None);
    let base = baseline.run();
    println!("\n[baseline]   Mean, no attack      : best {:.1}%", 100.0 * base.best_accuracy);

    // Undefended mean under the Min-Max attack.
    let mut undefended = Simulator::new(
        tasks::fashion_like(42),
        cfg.clone(),
        Box::new(Mean::new()),
        Some(Box::new(MinMax::new())),
    );
    let broken = undefended.run();
    println!(
        "[undefended] Mean under Min-Max        : best {:.1}%  (attack impact {:.1} points)",
        100.0 * broken.best_accuracy,
        100.0 * broken.attack_impact(base.best_accuracy)
    );

    // SignGuard under the same attack.
    let mut defended = Simulator::new(
        tasks::fashion_like(42),
        cfg,
        Box::new(SignGuard::plain(0)),
        Some(Box::new(MinMax::new())),
    );
    let safe = defended.run();
    println!(
        "[defended]   SignGuard under Min-Max  : best {:.1}%  (attack impact {:.1} points)",
        100.0 * safe.best_accuracy,
        100.0 * safe.attack_impact(base.best_accuracy)
    );
    println!(
        "\nSignGuard selection rates — honest: {:.2}, malicious: {:.2}",
        safe.selection.honest_rate(),
        safe.selection.malicious_rate()
    );
}
