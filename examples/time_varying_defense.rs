//! Time-varying attack (paper Fig. 5): the adversary re-rolls its attack
//! every epoch; we print per-epoch accuracy curves for several defenses.
//!
//! ```sh
//! cargo run --release --example time_varying_defense
//! ```

use signguard::aggregators::{Aggregator, Bulyan, DnC, Mean, MultiKrum};
use signguard::attacks::{Attack, ByzMean, Lie, MinMax, RandomAttack, SignFlip, TimeVarying};
use signguard::core::SignGuard;
use signguard::fl::{tasks, FlConfig, Simulator};

fn attack_pool() -> Vec<Box<dyn Attack>> {
    vec![
        Box::new(RandomAttack::new()),
        Box::new(SignFlip::new()),
        Box::new(Lie::new()),
        Box::new(ByzMean::new()),
        Box::new(MinMax::new()),
    ]
}

fn main() {
    let cfg = FlConfig { epochs: 10, ..FlConfig::default() };
    let (n, m) = (cfg.num_clients, cfg.byzantine_count());

    type DefenseCtor = Box<dyn FnOnce() -> Box<dyn Aggregator>>;
    let defenses: Vec<(&str, DefenseCtor)> = vec![
        ("Baseline (no attack)", Box::new(|| Box::new(Mean::new()) as Box<dyn Aggregator>)),
        ("Multi-Krum", Box::new(move || Box::new(MultiKrum::new(m, n - m)) as Box<dyn Aggregator>)),
        ("Bulyan", Box::new(move || Box::new(Bulyan::new(m)) as Box<dyn Aggregator>)),
        ("DnC", Box::new(move || Box::new(DnC::new(m).with_subsample_dim(2000)) as Box<dyn Aggregator>)),
        ("SignGuard", Box::new(|| Box::new(SignGuard::plain(0)) as Box<dyn Aggregator>)),
    ];

    println!("Per-epoch test accuracy under a time-varying attack:\n");
    for (i, (name, make_gar)) in defenses.into_iter().enumerate() {
        let task = tasks::fashion_like(13);
        let rpe = cfg.rounds_per_epoch(task.train.len());
        let attack: Option<Box<dyn Attack>> = if i == 0 {
            None // baseline: no attack
        } else {
            Some(Box::new(TimeVarying::new(attack_pool(), true, rpe, 99)))
        };
        let mut sim = Simulator::new(task, cfg.clone(), make_gar(), attack);
        let r = sim.run();
        let curve: Vec<String> = r.accuracy_curve.iter().map(|(_, a)| format!("{:.0}", 100.0 * a)).collect();
        println!("{:<22} [{}]  best {:.1}%", name, curve.join(" "), 100.0 * r.best_accuracy);
    }
}
