//! # SignGuard — Byzantine-robust federated learning
//!
//! A full reproduction of *"Byzantine-robust Federated Learning through
//! Collaborative Malicious Gradient Filtering"* (Xu, Huang, Song, Lan —
//! ICDCS 2022) as a Rust workspace, including every substrate the paper
//! depends on:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `sg-core` | the SignGuard aggregation rule (plain / Sim / Dist) |
//! | [`aggregators`] | `sg-aggregators` | Mean, TrMean, Median, GeoMed, Multi-Krum, Bulyan, DnC, signSGD, CClip |
//! | [`attacks`] | `sg-attacks` | Random, Noise, Sign-flip, Label-flip, LIE, ByzMean, Min-Max, Min-Sum |
//! | [`fl`] | `sg-fl` | the federated simulator (clients, adversary, server, metrics) |
//! | [`runtime`] | `sg-runtime` | parallel execution engine: worker pool, sharded kernels, gradient arena, scenario-grid driver |
//! | [`nn`] | `sg-nn` | from-scratch neural networks with hand-written backprop |
//! | [`tensor`] | `sg-tensor` | dense tensors, GEMM, im2col convolution |
//! | [`data`] | `sg-data` | synthetic datasets + IID / non-IID partitioners |
//! | [`cluster`] | `sg-cluster` | MeanShift / KMeans used by the sign filter |
//! | [`math`] | `sg-math` | vector ops, statistics, Gaussian sampling, CRC-32 |
//! | [`net`] | `sg-net` | networked FL service: framed wire protocol, loopback + TCP transports |
//! | [`obs`] | `sg-obs` | deterministic tracing/metrics: spans, counters, JSONL + summary sinks |
//!
//! # Quickstart
//!
//! ```no_run
//! use signguard::attacks::Lie;
//! use signguard::core::SignGuard;
//! use signguard::fl::{tasks, FlConfig, Simulator};
//!
//! let task = tasks::mnist_like(42);
//! let cfg = FlConfig::default();
//! let mut sim = Simulator::new(task, cfg, Box::new(SignGuard::sim(0)), Some(Box::new(Lie::new())));
//! let result = sim.run();
//! println!("best accuracy under LIE: {:.1}%", 100.0 * result.best_accuracy);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness binaries that regenerate every table and figure of the paper.

pub use sg_aggregators as aggregators;
pub use sg_attacks as attacks;
pub use sg_cluster as cluster;
pub use sg_core as core;
pub use sg_data as data;
pub use sg_fl as fl;
pub use sg_math as math;
pub use sg_net as net;
pub use sg_nn as nn;
pub use sg_obs as obs;
pub use sg_runtime as runtime;
pub use sg_tensor as tensor;

/// Library version (workspace-wide).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        let _ = crate::core::SignGuard::plain(0);
        let _ = crate::aggregators::Mean::new();
        let _ = crate::attacks::Lie::new();
        assert!(!crate::VERSION.is_empty());
    }
}
