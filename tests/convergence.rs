//! Checks of the paper's convergence machinery:
//!
//! * **Lemma 1** — the deviation between the honest-subset average and the
//!   global gradient respects `β²κ²/(1−β)² + σ²/((1−β)n)`;
//! * **Assumption 2 / Theorem 1** (empirical form) — SignGuard's output
//!   stays within a bounded bias of the honest average, and training
//!   driven by SignGuard converges (loss decreases) in both IID and
//!   non-IID settings.

use rand::Rng;
use signguard::aggregators::{Aggregator, Mean};
use signguard::attacks::{ByzMean, SignFlip};
use signguard::core::SignGuard;
use signguard::fl::{tasks, FlConfig, Partitioning, Schedule, Simulator};
use signguard::math::{l2_distance, seeded_rng, vecops};

/// Builds a synthetic client population with controlled local variance σ²
/// and heterogeneity κ² around a known global gradient.
fn population(n: usize, dim: usize, sigma: f32, kappa: f32, seed: u64) -> (Vec<f32>, Vec<Vec<f32>>) {
    let mut rng = seeded_rng(seed);
    // Offset keeps the sign statistics unbalanced (the CNN-like regime of
    // the paper's Fig. 2a); a perfectly balanced population is the known
    // hard case for the plain sign filter (Table II, sign-flip row).
    let global: Vec<f32> = (0..dim).map(|j| (j as f32 * 0.21).cos() * 0.6 + 0.4).collect();
    let grads = (0..n)
        .map(|_| {
            // Per-client drift bounded by κ plus stochastic noise bounded-σ.
            let drift: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
            let drift_norm = signguard::math::l2_norm(&drift).max(1e-9);
            global
                .iter()
                .zip(&drift)
                .map(|(&g, &d)| {
                    g + d / drift_norm * kappa / (dim as f32).sqrt() * (dim as f32).sqrt()
                        + rng.gen_range(-sigma..sigma) / (dim as f32).sqrt()
                })
                .collect()
        })
        .collect();
    (global, grads)
}

#[test]
fn lemma1_deviation_bound_holds() {
    let n = 50usize;
    let dim = 1000usize;
    let sigma = 2.0f32;
    let kappa = 1.5f32;
    for beta in [0.1f32, 0.2, 0.4] {
        let (global, grads) = population(n, dim, sigma, kappa, 7);
        let keep = ((1.0 - beta) * n as f32) as usize;
        let honest: Vec<Vec<f32>> = grads[..keep].to_vec();
        let avg = vecops::mean_vector(&honest, dim);
        let dev_sq = l2_distance(&avg, &global).powi(2);
        // Lemma 1 (using the construction's σ, κ as the bound constants;
        // the uniform drift has norm κ exactly, noise per-coordinate is
        // bounded so its total variance is ≤ σ²).
        let bound =
            beta.powi(2) * kappa.powi(2) / (1.0 - beta).powi(2) + sigma.powi(2) / ((1.0 - beta) * n as f32);
        assert!(
            dev_sq <= bound * 4.0, // slack for finite-sample randomness
            "beta={beta}: deviation² {dev_sq} exceeds 4×bound {bound}"
        );
    }
}

#[test]
fn signguard_bias_to_honest_average_is_bounded() {
    // Assumption 2's empirical content: with attackers present, the
    // aggregate stays within the honest population's own spread of the
    // honest mean.
    let (_, mut grads) = population(40, 1000, 1.0, 0.5, 9);
    let dim = 1000;
    let honest_mean = vecops::mean_vector(&grads, dim);
    let spread = grads.iter().map(|g| l2_distance(g, &honest_mean)).fold(0.0f32, f32::max);
    // Ten sign-flipped attackers join.
    for i in 0..10 {
        let flipped: Vec<f32> = grads[i].iter().map(|x| -x * 2.0).collect();
        grads.push(flipped);
    }
    let mut gar = SignGuard::plain(3);
    let out = gar.aggregate(&grads);
    let bias = l2_distance(&out.gradient, &honest_mean);
    assert!(bias <= spread, "bias {bias} exceeds honest spread {spread}");
}

#[test]
fn signguard_training_converges_iid() {
    let cfg = FlConfig { num_clients: 10, epochs: 3, ..FlConfig::default() };
    let mut sim = Simulator::new(tasks::mlp_task(11), cfg, Box::new(SignGuard::plain(0)), None);
    let r = sim.run();
    // Mean loss at the end must be clearly below the start (convergence),
    // and accuracy above chance (5 classes).
    let first_losses: f32 = r.rounds.iter().take(3).map(|m| m.mean_loss).sum::<f32>() / 3.0;
    let last_losses: f32 = r.rounds.iter().rev().take(3).map(|m| m.mean_loss).sum::<f32>() / 3.0;
    assert!(last_losses < first_losses, "loss {first_losses} -> {last_losses}");
    assert!(r.best_accuracy > 0.3, "accuracy {}", r.best_accuracy);
}

#[test]
fn signguard_training_converges_noniid() {
    // Theorem 1's non-IID message: convergence still happens, with some
    // accuracy gap allowed (Δ₂ > 0 even at δ = 0).
    let cfg = FlConfig {
        num_clients: 10,
        epochs: 3,
        partitioning: Partitioning::NonIid { s: 0.5 },
        ..FlConfig::default()
    };
    let mut sim = Simulator::new(tasks::mlp_task(12), cfg, Box::new(SignGuard::plain(0)), None);
    let r = sim.run();
    assert!(r.best_accuracy > 0.25, "non-IID accuracy {}", r.best_accuracy);
}

#[test]
fn signguard_beats_mean_under_signflip_with_stragglers() {
    // The filtering pipeline must stay effective when 30% of the clients
    // deliver stale gradients (the heterogeneous regime of Mai et al. /
    // Kritharakis et al.): under sign-flip, SignGuard's selection should
    // keep it at or above the undefended Mean, straggling or not.
    let cfg = FlConfig {
        num_clients: 10,
        epochs: 3,
        schedule: Schedule::Straggler { slow_fraction: 0.3, max_delay: 4 },
        ..FlConfig::default()
    };
    let mut mean = Simulator::new(
        tasks::mlp_task(17),
        cfg.clone(),
        Box::new(Mean::new()),
        Some(Box::new(SignFlip::new())),
    );
    let r_mean = mean.run();
    let mut sg = Simulator::new(
        tasks::mlp_task(17),
        cfg,
        Box::new(SignGuard::plain(0)),
        Some(Box::new(SignFlip::new())),
    );
    let r_sg = sg.run();
    assert!(
        r_sg.best_accuracy >= r_mean.best_accuracy,
        "SignGuard {:.3} must not lose to Mean {:.3} under sign-flip with 30% stragglers",
        r_sg.best_accuracy,
        r_mean.best_accuracy
    );
    assert!(r_sg.best_accuracy > 0.3, "SignGuard still converges: {:.3}", r_sg.best_accuracy);
    // The straggler schedule really produced stale batches.
    assert!(r_sg.rounds.iter().any(|m| m.applied && m.max_staleness > 0));
}

#[test]
fn signguard_beats_mean_under_byzmean_async_buffered() {
    // The buffered-async schedule (FedBuf-style: the server aggregates
    // once k updates are pending, so every round mixes fresh and stale
    // gradients) is the one schedule mode the convergence suite did not
    // yet cover. ByzMean (Eq. 8) steers the *mean of all updates* to its
    // inner target — here a sign-flipped gradient, the hybrid's
    // destructive form — so the undefended Mean is fully captured while
    // SignGuard's filtering must still separate the malicious updates.
    let byzmean = || -> Box<ByzMean> { Box::new(ByzMean::with_inner(Box::new(SignFlip::new()))) };
    let cfg = FlConfig {
        num_clients: 10,
        byzantine_fraction: 0.3,
        epochs: 3,
        schedule: Schedule::AsyncBuffered { k: 5, max_delay: 4 },
        ..FlConfig::default()
    };
    let mut mean = Simulator::new(tasks::mlp_task(21), cfg.clone(), Box::new(Mean::new()), Some(byzmean()));
    let r_mean = mean.run();
    let mut sg = Simulator::new(tasks::mlp_task(21), cfg, Box::new(SignGuard::plain(0)), Some(byzmean()));
    let r_sg = sg.run();
    assert!(
        r_sg.best_accuracy >= r_mean.best_accuracy + 0.3,
        "SignGuard {:.3} must clearly beat Mean {:.3} under ByzMean in the buffered-async schedule",
        r_sg.best_accuracy,
        r_mean.best_accuracy
    );
    assert!(r_sg.best_accuracy > 0.3, "SignGuard still converges: {:.3}", r_sg.best_accuracy);
    // The buffered schedule really delivered stale gradients to the server.
    assert!(r_sg.rounds.iter().any(|m| m.applied && m.max_staleness > 0));
}

#[test]
fn noniid_gap_vs_iid_exists_under_attack() {
    // The paper's Remark 2: Byzantine presence hurts more on skewed data.
    let base = FlConfig { num_clients: 10, epochs: 3, ..FlConfig::default() };
    let mut iid = Simulator::new(
        tasks::mlp_task(13),
        base.clone(),
        Box::new(SignGuard::plain(0)),
        Some(Box::new(signguard::attacks::Lie::new())),
    );
    let acc_iid = iid.run().best_accuracy;
    let mut skewed = Simulator::new(
        tasks::mlp_task(13),
        FlConfig { partitioning: Partitioning::NonIid { s: 0.2 }, ..base },
        Box::new(SignGuard::plain(0)),
        Some(Box::new(signguard::attacks::Lie::new())),
    );
    let acc_skew = skewed.run().best_accuracy;
    // Allow noise, but the skewed run should not dominate the IID run by a
    // wide margin.
    assert!(acc_skew <= acc_iid + 0.1, "iid {acc_iid} vs skewed {acc_skew}");
}
