//! End-to-end federated runs across the attack × defense grid on a small
//! configuration — the integration smoke of the whole stack (data →
//! models → clients → attacks → aggregation → metrics).

use signguard::aggregators::{Aggregator, Mean, MultiKrum, TrimmedMean};
use signguard::attacks::{Attack, ByzMean, LabelFlip, Lie, MinMax, RandomAttack, SignFlip};
use signguard::core::SignGuard;
use signguard::fl::{tasks, FlConfig, Simulator};

fn small_cfg() -> FlConfig {
    FlConfig { num_clients: 10, epochs: 2, ..FlConfig::default() }
}

fn run(gar: Box<dyn Aggregator>, attack: Option<Box<dyn Attack>>, seed: u64) -> signguard::fl::RunResult {
    let mut sim = Simulator::new(tasks::mlp_task(seed), small_cfg(), gar, attack);
    sim.run()
}

#[test]
fn every_attack_runs_against_signguard() {
    let attacks: Vec<Box<dyn Attack>> = vec![
        Box::new(RandomAttack::new()),
        Box::new(SignFlip::new()),
        Box::new(LabelFlip::new()),
        Box::new(Lie::new()),
        Box::new(ByzMean::new()),
        Box::new(MinMax::new()),
    ];
    for attack in attacks {
        let name = attack.name();
        let r = run(Box::new(SignGuard::plain(0)), Some(attack), 21);
        assert!(r.final_accuracy.is_finite(), "{name}: accuracy not finite");
        assert!(r.best_accuracy >= 0.0 && r.best_accuracy <= 1.0, "{name}");
        assert!(r.selection.has_data(), "{name}: SignGuard must report selection");
    }
}

#[test]
fn every_defense_runs_under_lie() {
    let defenses: Vec<Box<dyn Aggregator>> = vec![
        Box::new(Mean::new()),
        Box::new(TrimmedMean::new(2)),
        Box::new(MultiKrum::new(2, 8)),
        Box::new(SignGuard::sim(0)),
        Box::new(SignGuard::dist(0)),
    ];
    for gar in defenses {
        let name = gar.name();
        let r = run(gar, Some(Box::new(Lie::new())), 22);
        assert!(r.best_accuracy > 0.15, "{name}: collapsed to {}", r.best_accuracy);
    }
}

#[test]
fn signguard_filters_blatant_attack_gradients() {
    let r = run(Box::new(SignGuard::plain(5)), Some(Box::new(SignFlip::new())), 23);
    assert!(
        r.selection.malicious_rate() < 0.35,
        "sign-flip selection rate too high: {}",
        r.selection.malicious_rate()
    );
    assert!(r.selection.honest_rate() > 0.5, "honest selection rate too low: {}", r.selection.honest_rate());
}

#[test]
fn label_flip_poisons_client_side() {
    // With the LabelFlip marker, Byzantine clients train on flipped labels;
    // the run must complete and the gradients stay finite.
    let r = run(Box::new(Mean::new()), Some(Box::new(LabelFlip::new())), 24);
    assert!(r.final_accuracy.is_finite());
    for m in &r.rounds {
        assert!(m.mean_loss.is_finite());
    }
}

#[test]
fn accuracy_curve_has_one_point_per_epoch() {
    let r = run(Box::new(Mean::new()), None, 25);
    assert_eq!(r.accuracy_curve.len(), small_cfg().epochs);
    // Curve rounds are strictly increasing.
    assert!(r.accuracy_curve.windows(2).all(|w| w[0].0 < w[1].0));
}

#[test]
fn nan_gradient_attack_does_not_poison_signguard() {
    /// An attack that sends NaN gradients (fault injection).
    struct NanAttack;
    impl Attack for NanAttack {
        fn craft(&mut self, ctx: &signguard::attacks::AttackContext<'_>) -> Vec<Vec<f32>> {
            let dim = ctx.byzantine_honest[0].len();
            vec![vec![f32::NAN; dim]; ctx.byzantine_count()]
        }
        fn name(&self) -> &'static str {
            "NaN"
        }
    }
    let r = run(Box::new(SignGuard::plain(0)), Some(Box::new(NanAttack)), 26);
    assert!(r.final_accuracy.is_finite(), "NaN leaked into the model");
    assert!(r.best_accuracy > 0.2, "NaN attack broke training: {}", r.best_accuracy);
    assert_eq!(r.selection.malicious_rate(), 0.0, "NaN gradients must never be selected");
}

#[test]
fn inf_gradient_attack_does_not_poison_signguard() {
    struct InfAttack;
    impl Attack for InfAttack {
        fn craft(&mut self, ctx: &signguard::attacks::AttackContext<'_>) -> Vec<Vec<f32>> {
            let dim = ctx.byzantine_honest[0].len();
            vec![vec![f32::INFINITY; dim]; ctx.byzantine_count()]
        }
        fn name(&self) -> &'static str {
            "Inf"
        }
    }
    let r = run(Box::new(SignGuard::plain(0)), Some(Box::new(InfAttack)), 27);
    assert!(r.final_accuracy.is_finite());
    assert_eq!(r.selection.malicious_rate(), 0.0);
}

#[test]
fn duplicate_colluding_gradients_handled() {
    // All attackers send byte-identical vectors (the collusion case the
    // paper notes KMeans-2 suffices for).
    struct CloneAttack;
    impl Attack for CloneAttack {
        fn craft(&mut self, ctx: &signguard::attacks::AttackContext<'_>) -> Vec<Vec<f32>> {
            let dim = ctx.byzantine_honest[0].len();
            vec![vec![0.5; dim]; ctx.byzantine_count()]
        }
        fn name(&self) -> &'static str {
            "Clone"
        }
    }
    let r = run(Box::new(SignGuard::plain(0)), Some(Box::new(CloneAttack)), 28);
    assert!(r.selection.malicious_rate() < 0.5);
}

#[test]
fn run_is_reproducible_for_fixed_seed() {
    let a = run(Box::new(SignGuard::sim(0)), Some(Box::new(Lie::new())), 29);
    let b = run(Box::new(SignGuard::sim(0)), Some(Box::new(Lie::new())), 29);
    assert_eq!(a.final_accuracy, b.final_accuracy);
    assert_eq!(a.accuracy_curve, b.accuracy_curve);
}

#[test]
fn all_four_paper_tasks_train_one_epoch() {
    for task in tasks::paper_tasks(31) {
        let name = task.name;
        let cfg = FlConfig { num_clients: 10, epochs: 1, ..FlConfig::default() };
        let mut sim = Simulator::new(task, cfg, Box::new(SignGuard::plain(0)), Some(Box::new(Lie::new())));
        let r = sim.run();
        assert!(r.final_accuracy.is_finite(), "{name}");
        assert!(r.final_accuracy >= 0.0, "{name}");
    }
}
