//! Integration tests for the extension features beyond the paper's core:
//! validation-based defenses (FLTrust, Zeno), the adaptive white-box
//! attack, and partial participation.

use signguard::aggregators::Aggregator;
use signguard::attacks::{AdaptiveSignMimicry, Attack, Lie, SignFlip};
use signguard::core::SignGuard;
use signguard::data::Dataset;
use signguard::fl::{tasks, FlConfig, Simulator, ValidatingServer, ValidationRule};
use signguard::math::seeded_rng;

fn small_cfg() -> FlConfig {
    FlConfig { num_clients: 10, epochs: 2, ..FlConfig::default() }
}

fn validating(rule: ValidationRule, seed: u64) -> (ValidatingServer, signguard::fl::Task) {
    let task = tasks::mlp_task(seed);
    let mut rng = seeded_rng(0);
    let model = task.build_model(&mut rng);
    let root = Dataset::new(
        task.test.samples()[..60].to_vec(),
        task.test.item_shape().to_vec(),
        task.test.num_classes(),
    );
    (ValidatingServer::new(rule, model, root, 32, 9), task)
}

#[test]
fn fltrust_trains_under_signflip() {
    let (server, task) = validating(ValidationRule::FlTrust, 41);
    let mut sim = Simulator::new(task, small_cfg(), Box::new(server), Some(Box::new(SignFlip::new())));
    let r = sim.run();
    assert!(r.best_accuracy > 0.3, "FLTrust best {:.3}", r.best_accuracy);
    // Reversed gradients have negative cosine to the server gradient, so
    // they are ReLU-clipped out.
    assert!(r.selection.malicious_rate() < 0.3, "M rate {}", r.selection.malicious_rate());
}

#[test]
fn zeno_trains_under_lie() {
    let rule = ValidationRule::Zeno { b: 2, rho: 1e-4, gamma: 0.05 };
    let (server, task) = validating(rule, 42);
    let mut sim = Simulator::new(task, small_cfg(), Box::new(server), Some(Box::new(Lie::new())));
    let r = sim.run();
    assert!(r.best_accuracy > 0.3, "Zeno best {:.3}", r.best_accuracy);
    assert!(r.selection.has_data());
}

#[test]
fn validating_server_name_reported() {
    let (server, _) = validating(ValidationRule::FlTrust, 43);
    assert_eq!(server.name(), "FLTrust");
    let (server, _) = validating(ValidationRule::Zeno { b: 1, rho: 1e-4, gamma: 0.01 }, 43);
    assert_eq!(server.name(), "Zeno");
}

#[test]
fn adaptive_attack_runs_end_to_end() {
    let mut sim = Simulator::new(
        tasks::mlp_task(44),
        small_cfg(),
        Box::new(SignGuard::plain(0)),
        Some(Box::new(AdaptiveSignMimicry::new())),
    );
    let r = sim.run();
    assert!(r.final_accuracy.is_finite());
    // The adaptive attack is designed to evade the sign filter; a nonzero
    // malicious selection rate is the expected (and documented) outcome.
    assert!(r.selection.malicious_rate() <= 1.0);
}

#[test]
fn adaptive_attack_evades_filters_better_than_signflip() {
    let run = |attack: Box<dyn Attack>| {
        let mut sim =
            Simulator::new(tasks::mlp_task(45), small_cfg(), Box::new(SignGuard::plain(1)), Some(attack));
        sim.run().selection.malicious_rate()
    };
    let adaptive_rate = run(Box::new(AdaptiveSignMimicry::new()));
    let blunt_rate = run(Box::new(signguard::attacks::ReverseScaling::new(50.0)));
    // The blunt scaled reverse must be filtered at least as hard as the
    // stealthy adaptive attack.
    assert!(adaptive_rate >= blunt_rate, "adaptive {adaptive_rate} vs blunt {blunt_rate}");
}

#[test]
fn partial_participation_with_attack_and_defense() {
    let cfg = FlConfig { participation: 0.6, epochs: 2, ..small_cfg() };
    let mut sim =
        Simulator::new(tasks::mlp_task(46), cfg, Box::new(SignGuard::sim(0)), Some(Box::new(Lie::new())));
    let r = sim.run();
    assert!(r.final_accuracy.is_finite());
    assert!(r.selection.has_data());
}

#[test]
fn participation_one_equals_full_round() {
    // participation == 1.0 takes the direct all-clients fast path;
    // participation just below 1.0 selects every client through the
    // sampling branch (k = ceil(n * p) = n, then byz-first sort restores
    // 0..n order). Both must produce the identical training trajectory —
    // comparing them actually exercises the sampling path, unlike
    // run(1.0) == run(1.0).
    let run = |participation: f32| {
        let cfg = FlConfig { participation, ..small_cfg() };
        let mut sim =
            Simulator::new(tasks::mlp_task(47), cfg, Box::new(signguard::aggregators::Mean::new()), None);
        sim.run().final_accuracy
    };
    assert_eq!(run(1.0), run(0.999));
}
