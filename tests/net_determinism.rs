//! The loopback-transport determinism contract: a federated run served
//! over the wire protocol (`sg-net`'s [`LoopbackNet`]) is **bit-for-bit
//! identical** to the in-process synchronous simulator — final model
//! bits, per-round honest losses, everything — for the same seeds, at
//! any thread count.
//!
//! Why this holds (and what these tests pin down):
//!
//! * the client fleet comes from the same seed schedule
//!   ([`build_participants`]), so replicas, shards and RNG streams match;
//! * every parameter vector and gradient crosses the real frame codec as
//!   raw f32 bits, so no value is perturbed in flight;
//! * each client computes exactly one gradient per round (re-deliveries
//!   reuse the cached update), so RNG streams never fork;
//! * the service ingests each completed round ascending by client id —
//!   the same float order as the in-process Sync drain — and then runs
//!   *the same* attack → aggregate → apply code
//!   ([`RoundPipeline::apply_batch`]).
//!
//! Thread counts honor the `SG_THREADS` environment variable exactly as
//! `runtime_determinism.rs` does (a count or comma-separated list); CI's
//! `loopback-determinism` job loops over 1 and 4.

use signguard::aggregators::{Aggregator, Mean, SignMajority};
use signguard::attacks::{Attack, SignFlip};
use signguard::core::SignGuard;
use signguard::fl::{build_participants, tasks, FlConfig, PartitionCache, Simulator};
use signguard::net::{ClientDriver, Compression, FlService, LoopbackNet, ServiceReport, Transport};
use signguard::runtime::Engine;

fn thread_counts() -> Vec<usize> {
    match std::env::var("SG_THREADS") {
        Ok(list) => list
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(|t| t.parse().unwrap_or_else(|_| panic!("SG_THREADS: bad thread count {t:?}")))
            .collect(),
        Err(_) => vec![1, 2, 3, 8],
    }
}

fn quick_cfg(seed: u64) -> FlConfig {
    FlConfig {
        num_clients: 10,
        byzantine_fraction: 0.2,
        batch_size: 8,
        epochs: 2,
        seed,
        ..FlConfig::default()
    }
}

fn engine_for(threads: usize) -> Engine {
    if threads <= 1 {
        Engine::sequential()
    } else {
        Engine::parallel(threads)
    }
}

/// Runs the service over a loopback fleet built from the same seeds.
fn loopback_run(
    seed: u64,
    gar: Box<dyn Aggregator>,
    attack: Option<Box<dyn Attack>>,
    engine: &Engine,
    latency_seed: u64,
    max_latency: u64,
) -> ServiceReport {
    let task = tasks::mlp_task(seed);
    let cfg = quick_cfg(seed);
    let participants = build_participants(&task, &cfg, attack.as_deref(), &PartitionCache::new());
    let drivers: Vec<ClientDriver> = participants
        .clients
        .into_iter()
        .map(|c| ClientDriver::new(c, task.train.clone(), cfg.batch_size))
        .collect();
    let mut net = LoopbackNet::new(drivers, latency_seed, max_latency);
    let service = FlService::new(&task, &cfg, gar, attack, engine);
    service.run(&mut net)
}

/// [`loopback_run`] with every client submitting in the given wire
/// representation.
fn loopback_run_compressed(
    seed: u64,
    gar: Box<dyn Aggregator>,
    attack: Option<Box<dyn Attack>>,
    engine: &Engine,
    compression: Compression,
) -> ServiceReport {
    let task = tasks::mlp_task(seed);
    let cfg = quick_cfg(seed);
    let participants = build_participants(&task, &cfg, attack.as_deref(), &PartitionCache::new());
    let drivers: Vec<ClientDriver> = participants
        .clients
        .into_iter()
        .map(|c| ClientDriver::new(c, task.train.clone(), cfg.batch_size).with_compression(compression))
        .collect();
    let mut net = LoopbackNet::new(drivers, 7, 5);
    FlService::new(&task, &cfg, gar, attack, engine).run(&mut net)
}

/// Runs the in-process simulator with the same seeds and returns
/// `(final params, per-round honest mean losses)`.
fn in_process_run(
    seed: u64,
    gar: Box<dyn Aggregator>,
    attack: Option<Box<dyn Attack>>,
    engine: Engine,
) -> (Vec<f32>, Vec<f32>) {
    let mut sim = Simulator::with_engine(tasks::mlp_task(seed), quick_cfg(seed), gar, attack, engine);
    let result = sim.run();
    let losses = result.rounds.iter().map(|m| m.mean_loss).collect();
    (sim.global_params().to_vec(), losses)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_wire_matches_in_process(
    seed: u64,
    make_gar: impl Fn() -> Box<dyn Aggregator>,
    make_attack: impl Fn() -> Option<Box<dyn Attack>>,
    what: &str,
) {
    // In-process reference on the sequential engine.
    let (ref_params, ref_losses) = in_process_run(seed, make_gar(), make_attack(), Engine::sequential());
    for threads in thread_counts() {
        let engine = engine_for(threads);
        let report = loopback_run(seed, make_gar(), make_attack(), &engine, 99, 7);
        assert_eq!(
            report.rounds,
            ref_losses.len(),
            "{what} @ {threads} threads: wire run applied a different round count"
        );
        assert_eq!(
            bits(&report.final_params),
            bits(&ref_params),
            "{what} @ {threads} threads: final model diverges over the wire"
        );
        assert_eq!(
            bits(&report.round_losses),
            bits(&ref_losses),
            "{what} @ {threads} threads: per-round losses diverge over the wire"
        );
        assert_eq!(report.rejects, 0, "{what}: a deterministic loopback run never rejects");
    }
}

#[test]
fn loopback_matches_in_process_sync_mean_no_attack() {
    assert_wire_matches_in_process(31, || Box::new(Mean::new()), || None, "Mean / no attack");
}

#[test]
fn loopback_matches_in_process_sync_signguard_under_signflip() {
    // SignGuard exercises the executor-sharded filter kernels, so this
    // also proves the wire path inherits the engine's thread-invariance.
    assert_wire_matches_in_process(
        32,
        || Box::new(SignGuard::plain(4)),
        || Some(Box::new(SignFlip::new())),
        "SignGuard / sign-flip",
    );
}

#[test]
fn loopback_final_model_is_latency_seed_invariant() {
    // Different latency seeds reorder arrivals on the virtual clock; the
    // service canonicalizes by client id, so the model must not move.
    let engine = Engine::sequential();
    let base = loopback_run(33, Box::new(Mean::new()), None, &engine, 1, 5);
    for (latency_seed, max_latency) in [(2u64, 5u64), (77, 1), (123, 19)] {
        let other = loopback_run(33, Box::new(Mean::new()), None, &engine, latency_seed, max_latency);
        assert_eq!(
            bits(&base.final_params),
            bits(&other.final_params),
            "latency seed {latency_seed} / max {max_latency} moved the final model"
        );
        assert_eq!(bits(&base.round_losses), bits(&other.round_losses));
    }
}

#[test]
fn loopback_runs_are_reproducible() {
    // Same seeds end to end ⇒ identical reports (the whole struct, not
    // just the model — message counts included).
    let engine = Engine::sequential();
    let a = loopback_run(34, Box::new(SignGuard::plain(2)), Some(Box::new(SignFlip::new())), &engine, 9, 7);
    let b = loopback_run(34, Box::new(SignGuard::plain(2)), Some(Box::new(SignFlip::new())), &engine, 9, 7);
    assert_eq!(a, b);
}

#[test]
fn loopback_message_accounting_is_exact() {
    // 10 clients, R rounds: each client sends Join + per-round
    // (FetchModel + SubmitUpdate) + Bye; the server answers Welcome +
    // per-round (Model + SubmitAck) + RoundAdvance broadcasts.
    let engine = Engine::sequential();
    let report = loopback_run(35, Box::new(Mean::new()), None, &engine, 5, 3);
    let n = 10u64;
    let r = report.rounds as u64;
    assert_eq!(report.messages_in, n + n * 2 * r + n, "client->server messages");
    assert_eq!(report.messages_out, n + n * 2 * r + n * r, "server->client messages");
    assert_eq!(report.rejects, 0);
}

#[test]
fn signnorm_compression_matches_in_process_signmajority() {
    // signSGD-with-majority-vote consumes exactly the information the
    // SignNorm representation preserves — per-coordinate signs and L2
    // norms — so a fleet submitting bit-packed updates at ~1/32nd the
    // bytes must produce the *same model bits* as the in-process dense
    // run: the "documented model" of the representation contract, at any
    // thread count.
    let (ref_params, ref_losses) =
        in_process_run(41, Box::new(SignMajority::new()), None, Engine::sequential());
    for threads in thread_counts() {
        let engine = engine_for(threads);
        let report =
            loopback_run_compressed(41, Box::new(SignMajority::new()), None, &engine, Compression::SignNorm);
        assert_eq!(report.rounds, ref_losses.len(), "@{threads} threads: round count");
        assert_eq!(
            bits(&report.final_params),
            bits(&ref_params),
            "@{threads} threads: packed submissions moved the SignSGD model"
        );
        assert_eq!(bits(&report.round_losses), bits(&ref_losses), "@{threads} threads: losses");
        assert_eq!(report.rejects, 0);
    }
}

#[test]
fn compressed_runs_are_reproducible_under_attack_and_quantization() {
    // SignGuard's packed filter funnel under sign-norm compression, and
    // the dequantize-then-aggregate contract under 8-bit quantization:
    // both must complete every round with zero rejects and reproduce
    // bit-for-bit for fixed seeds. (With an active adversary the drain
    // point densifies — the attack seam crafts f32 coordinates — which is
    // exactly the documented fallback path.)
    let engine = Engine::sequential();
    for compression in [Compression::SignNorm, Compression::QuantizedI8] {
        let run = || {
            loopback_run_compressed(
                42,
                Box::new(SignGuard::plain(4)),
                Some(Box::new(SignFlip::new())),
                &engine,
                compression,
            )
        };
        let a = run();
        assert!(a.rounds > 0, "{compression:?}: no rounds applied");
        assert_eq!(a.rejects, 0, "{compression:?}: compressed submits were rejected");
        assert!(a.final_params.iter().all(|p| p.is_finite()), "{compression:?}: non-finite model");
        assert_eq!(a, run(), "{compression:?}: compressed run not reproducible");
    }
    // And without an adversary the SignNorm batch stays packed end to end
    // through SignGuard's native funnel (no densification, no rejects).
    let packed =
        loopback_run_compressed(43, Box::new(SignGuard::plain(4)), None, &engine, Compression::SignNorm);
    assert!(packed.rounds > 0);
    assert_eq!(packed.rejects, 0);
    assert!(packed.final_params.iter().all(|p| p.is_finite()));
}

#[test]
fn transport_poll_drains_clean_after_run() {
    let task = tasks::mlp_task(36);
    let cfg = quick_cfg(36);
    let participants = build_participants(&task, &cfg, None, &PartitionCache::new());
    let drivers: Vec<ClientDriver> = participants
        .clients
        .into_iter()
        .map(|c| ClientDriver::new(c, task.train.clone(), cfg.batch_size))
        .collect();
    let engine = Engine::sequential();
    let mut net = LoopbackNet::new(drivers, 11, 3);
    let service = FlService::new(&task, &cfg, Box::new(Mean::new()), None, &engine);
    let report = service.run(&mut net);
    assert!(report.rounds > 0);
    // After a clean run every connection closed and the clock has no
    // scheduled deliveries left.
    assert_eq!(net.poll(), None, "loopback still had undelivered events after the run");
}
