//! The socket backend's (weaker, still exact) determinism contract: a
//! run over real TCP — kernel-scheduled arrival order, backpressure and
//! all — produces a final model **bit-identical** to the loopback run of
//! the same seeds, because the service canonicalizes every round batch by
//! client id before the shared pipeline stages run.
//!
//! CI's `net-smoke` job proves the same thing end-to-end through the
//! `sg-server` / `sg-loadgen` binaries; this test pins it in-process so
//! plain `cargo test` catches a regression without the binary harness.

use std::net::SocketAddr;

use signguard::aggregators::Aggregator;
use signguard::attacks::{Attack, SignFlip};
use signguard::core::SignGuard;
use signguard::fl::{build_participants, tasks, FlConfig, PartitionCache, Task};
use signguard::net::{ClientDriver, FlService, LoopbackNet, ServiceReport, TcpClient, TcpServerTransport};
use signguard::runtime::Engine;

fn small_cfg(seed: u64) -> FlConfig {
    FlConfig {
        num_clients: 4,
        byzantine_fraction: 0.25,
        batch_size: 8,
        epochs: 1,
        seed,
        ..FlConfig::default()
    }
}

fn fleet(task: &Task, cfg: &FlConfig, attack: Option<&dyn Attack>) -> Vec<ClientDriver> {
    build_participants(task, cfg, attack, &PartitionCache::new())
        .clients
        .into_iter()
        .map(|c| ClientDriver::new(c, task.train.clone(), cfg.batch_size))
        .collect()
}

fn loopback_reference(seed: u64) -> ServiceReport {
    let task = tasks::mlp_task(seed);
    let cfg = small_cfg(seed);
    let drivers = fleet(&task, &cfg, Some(&SignFlip::new()));
    let mut net = LoopbackNet::new(drivers, 3, 5);
    let service = FlService::new(
        &task,
        &cfg,
        Box::new(SignGuard::plain(1)) as Box<dyn Aggregator>,
        Some(Box::new(SignFlip::new())),
        &Engine::sequential(),
    );
    service.run(&mut net)
}

/// Pumps one client's protocol state machine over a real socket until the
/// server announces the final round.
fn drive_client(addr: SocketAddr, mut driver: ClientDriver) {
    let mut conn = TcpClient::connect(&addr).expect("connect");
    for msg in driver.on_connect() {
        conn.send(&msg).expect("send");
    }
    while !driver.is_done() {
        let incoming = conn.recv().expect("recv");
        for reply in driver.on_message(&incoming) {
            conn.send(&reply).expect("send reply");
        }
    }
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn tcp_run_matches_loopback_bit_for_bit() {
    let seed = 41;
    let reference = loopback_reference(seed);
    assert!(reference.rounds > 0, "reference run applied no rounds");

    let task = tasks::mlp_task(seed);
    let cfg = small_cfg(seed);
    // A tight submit queue so backpressure actually fires; rejected
    // clients resend the cached gradient, which must not move the model.
    let mut transport = TcpServerTransport::bind("127.0.0.1:0", cfg.num_clients + 2, 2).expect("bind");
    let addr = transport.local_addr();
    let handles: Vec<_> = fleet(&task, &cfg, Some(&SignFlip::new()))
        .into_iter()
        .map(|driver| std::thread::spawn(move || drive_client(addr, driver)))
        .collect();
    let service = FlService::new(
        &task,
        &cfg,
        Box::new(SignGuard::plain(1)) as Box<dyn Aggregator>,
        Some(Box::new(SignFlip::new())),
        &Engine::sequential(),
    );
    let report = service.run(&mut transport);
    transport.shutdown();
    for handle in handles {
        handle.join().expect("client thread");
    }

    assert_eq!(report.rounds, reference.rounds, "socket run applied a different round count");
    assert_eq!(
        bits(&report.final_params),
        bits(&reference.final_params),
        "socket run's final model diverges from the loopback reference"
    );
    assert_eq!(
        bits(&report.round_losses),
        bits(&reference.round_losses),
        "per-round honest losses diverge over the socket"
    );
}
