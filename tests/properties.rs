//! Property-style tests on the core invariants of the aggregation rules,
//! filters and data pipeline.
//!
//! The build environment has no `proptest`, so each property runs over a
//! deterministic seeded fuzz loop (64 cases) instead of a shrinking
//! strategy. Invariants and bounds are unchanged.

use rand::Rng;
use signguard::aggregators::{Aggregator, Bulyan, CoordinateMedian, Mean, MultiKrum, TrimmedMean};
use signguard::core::SignGuard;
use signguard::math::vecops;

const CASES: u64 = 64;

/// A batch of `n ∈ [3, 12)` gradients of dim `d ∈ [2, 24)` with bounded
/// finite values, deterministic per case seed.
fn gradient_batch(seed: u64) -> Vec<Vec<f32>> {
    let mut rng = signguard::math::seeded_rng(seed);
    let n = rng.gen_range(3usize..12);
    let d = rng.gen_range(2usize..24);
    (0..n).map(|_| (0..d).map(|_| rng.gen_range(-100.0f32..100.0)).collect()).collect()
}

#[test]
fn mean_is_permutation_invariant() {
    for seed in 0..CASES {
        let grads = gradient_batch(seed);
        let mut shuffled = grads.clone();
        let mut rng = signguard::math::seeded_rng(seed ^ 0xABCD);
        signguard::math::rng::shuffle(&mut rng, &mut shuffled);
        let a = Mean::new().aggregate(&grads).gradient;
        let b = Mean::new().aggregate(&shuffled).gradient;
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-3, "seed {seed}");
        }
    }
}

#[test]
fn median_is_permutation_invariant() {
    for seed in 0..CASES {
        let grads = gradient_batch(seed);
        let mut shuffled = grads.clone();
        let mut rng = signguard::math::seeded_rng(seed ^ 0x1234);
        signguard::math::rng::shuffle(&mut rng, &mut shuffled);
        let a = CoordinateMedian::new().aggregate(&grads).gradient;
        let b = CoordinateMedian::new().aggregate(&shuffled).gradient;
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn median_within_coordinate_range() {
    for seed in 0..CASES {
        let grads = gradient_batch(seed);
        let out = CoordinateMedian::new().aggregate(&grads).gradient;
        for j in 0..out.len() {
            let lo = grads.iter().map(|g| g[j]).fold(f32::INFINITY, f32::min);
            let hi = grads.iter().map(|g| g[j]).fold(f32::NEG_INFINITY, f32::max);
            assert!(out[j] >= lo - 1e-5 && out[j] <= hi + 1e-5, "seed {seed} coord {j}");
        }
    }
}

#[test]
fn trimmed_mean_within_coordinate_range() {
    for seed in 0..CASES {
        let grads = gradient_batch(seed);
        let k = (grads.len() - 1) / 2;
        let out = TrimmedMean::new(k).aggregate(&grads).gradient;
        for j in 0..out.len() {
            let lo = grads.iter().map(|g| g[j]).fold(f32::INFINITY, f32::min);
            let hi = grads.iter().map(|g| g[j]).fold(f32::NEG_INFINITY, f32::max);
            assert!(out[j] >= lo - 1e-5 && out[j] <= hi + 1e-5, "seed {seed} coord {j}");
        }
    }
}

#[test]
fn identical_gradients_are_a_fixed_point() {
    for seed in 0..CASES {
        let mut rng = signguard::math::seeded_rng(seed);
        let d = rng.gen_range(2usize..20);
        let n = rng.gen_range(3usize..10);
        let g: Vec<f32> = (0..d).map(|_| rng.gen_range(-50.0f32..50.0)).collect();
        let grads = vec![g.clone(); n];
        let rules: Vec<Box<dyn Aggregator>> = vec![
            Box::new(Mean::new()),
            Box::new(CoordinateMedian::new()),
            Box::new(TrimmedMean::new(1)),
            Box::new(MultiKrum::new(1, n - 1)),
            Box::new(Bulyan::new(1)),
        ];
        for mut rule in rules {
            let out = rule.aggregate(&grads).gradient;
            for (x, y) in out.iter().zip(&g) {
                assert!((x - y).abs() < 1e-4, "{} not fixed point, seed {seed}", rule.name());
            }
        }
    }
}

#[test]
fn multikrum_selects_requested_count() {
    for seed in 0..CASES {
        let grads = gradient_batch(seed);
        let n = grads.len();
        let m = signguard::math::seeded_rng(seed ^ 0x77).gen_range(1usize..5);
        let sel = MultiKrum::new(1, m).aggregate(&grads).selected.expect("selection");
        assert_eq!(sel.len(), m.min(n), "seed {seed}");
        let mut sorted = sel.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), sel.len(), "seed {seed}");
        assert!(sel.iter().all(|&i| i < n), "seed {seed}");
    }
}

#[test]
fn signguard_aggregate_norm_bounded_by_median() {
    for seed in 0..CASES {
        let grads = gradient_batch(seed);
        let norms: Vec<f32> = grads.iter().map(|g| signguard::math::l2_norm(g)).collect();
        let med = signguard::math::median(&norms);
        let out = SignGuard::plain(seed).aggregate(&grads);
        // Mean of norm-clipped vectors cannot exceed the clip bound.
        assert!(signguard::math::l2_norm(&out.gradient) <= med * 1.01 + 1e-4, "seed {seed}");
    }
}

#[test]
fn signguard_selection_is_valid_subset() {
    for seed in 0..CASES {
        let grads = gradient_batch(seed);
        let out = SignGuard::plain(seed).aggregate(&grads);
        let sel = out.selected.expect("signguard reports selection");
        assert!(!sel.is_empty(), "seed {seed}");
        assert!(sel.iter().all(|&i| i < grads.len()), "seed {seed}");
        sel.windows(2).for_each(|w| assert!(w[0] < w[1], "selection must be sorted unique"));
    }
}

#[test]
fn clip_norm_never_exceeds_bound() {
    for seed in 0..CASES {
        let mut rng = signguard::math::seeded_rng(seed);
        let len = rng.gen_range(1usize..50);
        let v: Vec<f32> = (0..len).map(|_| rng.gen_range(-1e3f32..1e3)).collect();
        let bound = rng.gen_range(0.1f32..10.0);
        let c = vecops::clip_norm(&v, bound);
        assert!(signguard::math::l2_norm(&c) <= bound * 1.001, "seed {seed}");
        // Direction preserved.
        if signguard::math::l2_norm(&v) > 0.0 {
            assert!(vecops::cosine_similarity(&v, &c) > 0.999, "seed {seed}");
        }
    }
}

#[test]
fn sign_fractions_partition_unity() {
    for seed in 0..CASES {
        let mut rng = signguard::math::seeded_rng(seed);
        let len = rng.gen_range(1usize..200);
        let v: Vec<f32> = (0..len).map(|_| rng.gen_range(-10.0f32..10.0)).collect();
        let (p, z, n) = vecops::sign_counts(&v);
        assert_eq!(p + z + n, v.len(), "seed {seed}");
    }
}

#[test]
fn partition_iid_conserves() {
    for seed in 0..CASES {
        let mut rng = signguard::math::seeded_rng(seed);
        let n = rng.gen_range(1usize..10);
        let len = rng.gen_range(10usize..200).max(n);
        let parts = signguard::data::partition_iid(len, n, &mut rng);
        let mut all: Vec<usize> = parts.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..len).collect::<Vec<_>>(), "seed {seed}");
    }
}

#[test]
fn flip_label_stays_in_range() {
    for seed in 0..CASES {
        let mut rng = signguard::math::seeded_rng(seed);
        let classes = rng.gen_range(2usize..20);
        let l = rng.gen_range(0usize..classes);
        let f = signguard::data::flip_label(l, classes);
        assert!(f < classes, "seed {seed}");
        assert_eq!(signguard::data::flip_label(f, classes), l, "seed {seed}");
    }
}

#[test]
fn lie_z_monotone_in_byzantine_count() {
    for seed in 0..CASES {
        let mut rng = signguard::math::seeded_rng(seed);
        let n = rng.gen_range(10usize..100);
        let m2 = rng.gen_range(21usize..45);
        let m1 = rng.gen_range(1usize..20);
        if m2 >= n / 2 || m1 >= m2 {
            continue;
        }
        let z1 = signguard::attacks::lie_z_max(n, m1);
        let z2 = signguard::attacks::lie_z_max(n, m2);
        assert!(z2 >= z1, "z({n},{m1})={z1} z({n},{m2})={z2}");
    }
}

// ---- Sweep-journal codec (checkpoint/resume) ---------------------------
//
// The journal underwrites the byte-identical-resume guarantee, so its
// codec gets the property treatment: round-trip fidelity over random
// records, torn-tail recovery at *every* truncation offset, and strict
// rejection of any single flipped byte (CRC-32 catches all ≤8-bit bursts,
// the length-complement check catches damage to the frame length itself).

use sg_bench::journal::{self, CellRecord, DatasetMark, JournalHeader, SectionMark};

fn journal_string(rng: &mut impl Rng, max_len: usize) -> String {
    const POOL: &[char] = &['a', 'B', '7', '/', '-', '.', ' ', '"', '\\', '{', '}', '\n', 'π', 'δ', '☂'];
    let len = rng.gen_range(0usize..max_len.max(1));
    (0..len).map(|_| POOL[rng.gen_range(0usize..POOL.len())]).collect()
}

fn journal_case(seed: u64, max_cells: usize) -> (JournalHeader, Vec<CellRecord>) {
    let mut rng = signguard::math::seeded_rng(seed ^ 0x5EED_1095);
    let sections = (0..rng.gen_range(0usize..4))
        .map(|_| SectionMark {
            exp: journal_string(&mut rng, 12),
            cells: rng.gen_range(0u32..100),
            fp: rng.gen_range(0u64..u64::MAX),
        })
        .collect();
    let datasets = (0..rng.gen_range(0usize..3))
        .map(|_| DatasetMark {
            task: journal_string(&mut rng, 10),
            train_fp: rng.gen_range(0u64..u64::MAX),
            test_fp: rng.gen_range(0u64..u64::MAX),
        })
        .collect();
    let header = JournalHeader {
        version: 1,
        plan_seed: rng.gen_range(0u64..u64::MAX),
        plan_fp: rng.gen_range(0u64..u64::MAX),
        code_fp: rng.gen_range(0u64..u64::MAX),
        data_seed: rng.gen_range(0u64..u64::MAX),
        total_cells: rng.gen_range(0u32..1000),
        opts: journal_string(&mut rng, 60),
        sections,
        datasets,
    };
    let cells = (0..rng.gen_range(0usize..max_cells.max(1)))
        .map(|i| CellRecord {
            index: i as u32,
            seed: rng.gen_range(0u64..u64::MAX),
            label: journal_string(&mut rng, 30),
            rows: (0..rng.gen_range(0usize..4))
                .map(|_| (0..rng.gen_range(0usize..5)).map(|_| journal_string(&mut rng, 12)).collect())
                .collect(),
        })
        .collect();
    (header, cells)
}

#[test]
fn journal_round_trips_over_random_records() {
    for seed in 0..CASES {
        let (header, cells) = journal_case(seed, 6);
        let bytes = journal::encode(&header, &cells);
        let parsed = journal::parse(&bytes).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(parsed.header, header, "seed {seed}");
        assert_eq!(parsed.cells, cells, "seed {seed}");
        assert_eq!(parsed.torn_bytes, 0, "seed {seed}");
        assert_eq!(parsed.valid_len, bytes.len(), "seed {seed}");
    }
}

#[test]
fn journal_torn_tail_recovers_longest_prefix_at_every_offset() {
    for seed in [3u64, 11, 29] {
        let (header, cells) = journal_case(seed, 5);
        let full = journal::encode(&header, &cells);
        // boundaries[k] = encoded length of the journal with k cells.
        let boundaries: Vec<usize> =
            (0..=cells.len()).map(|k| journal::encode(&header, &cells[..k]).len()).collect();
        let header_end = boundaries[0];
        for cut in 0..full.len() {
            let parsed = journal::parse(&full[..cut]);
            if cut < header_end {
                assert!(parsed.is_err(), "seed {seed} cut {cut}: torn header must not parse");
                continue;
            }
            let parsed = parsed.unwrap_or_else(|e| panic!("seed {seed} cut {cut}: {e}"));
            let recovered = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(parsed.cells.len(), recovered, "seed {seed} cut {cut}");
            assert_eq!(parsed.cells[..], cells[..recovered], "seed {seed} cut {cut}");
            assert_eq!(parsed.valid_len, boundaries[recovered], "seed {seed} cut {cut}");
            assert_eq!(parsed.torn_bytes, cut - boundaries[recovered], "seed {seed} cut {cut}");
        }
    }
}

#[test]
fn journal_any_flipped_byte_is_rejected() {
    for seed in [5u64, 17] {
        let (header, cells) = journal_case(seed, 4);
        let full = journal::encode(&header, &cells);
        for pos in 0..full.len() {
            for mask in [0x01u8, 0x80] {
                let mut bytes = full.clone();
                bytes[pos] ^= mask;
                assert!(
                    journal::parse(&bytes).is_err(),
                    "seed {seed}: flip {mask:#04x} at byte {pos} must be caught"
                );
            }
        }
    }
}

// ---- Compressed gradient representations (sg-aggregators) --------------
//
// The pluggable `GradientBatch` element seam rests on two contracts: a
// bit-packed `SignNorm` vector preserves every per-coordinate sign
// (positive / zero / negative, with NaN folding to the zero sign, exactly
// like the dense `sign_counts` kernels), and an 8-bit quantized vector
// dequantizes within half a level of the original. Both get the seeded
// fuzz treatment over adversarial inputs.

use signguard::aggregators::{GradientRepr, QuantizedVec, SignNormVec};

#[test]
fn signnorm_roundtrip_preserves_every_sign_pattern() {
    for seed in 0..CASES {
        let mut rng = signguard::math::seeded_rng(seed ^ 0x516E);
        let len = rng.gen_range(1usize..300);
        let v: Vec<f32> = (0..len)
            .map(|_| match rng.gen_range(0usize..6) {
                0 => 0.0,
                1 => -0.0,
                2 => f32::NAN,
                3 => -rng.gen_range(1e-30f32..1e3),
                4 => f32::MIN_POSITIVE / 2.0, // subnormal, still strictly positive
                _ => rng.gen_range(1e-30f32..1e3),
            })
            .collect();
        let s = SignNormVec::pack(&v);
        let mut counted = (0usize, 0usize, 0usize);
        for (i, &x) in v.iter().enumerate() {
            let expect: i8 = if x > 0.0 {
                counted.0 += 1;
                1
            } else if x < 0.0 {
                counted.2 += 1;
                -1
            } else {
                counted.1 += 1; // zeros, -0.0 and NaN all carry the zero sign
                0
            };
            assert_eq!(s.sign_at(i), expect, "seed {seed} coord {i} ({x})");
        }
        assert_eq!(s.sign_counts(), counted, "seed {seed}");
        assert_eq!(s.nnz(), counted.0 + counted.2, "seed {seed}");
        // The dense stand-in reproduces the same sign pattern whenever its
        // per-coordinate magnitude `norm/√nnz` is a positive finite number
        // (a NaN norm — NaN input — or an underflowed magnitude cannot
        // carry sign information, and downstream finite-norm filters
        // reject those vectors anyway).
        let c = s.norm() / (s.nnz().max(1) as f32).sqrt();
        if c.is_finite() && c > 0.0 {
            for (i, &x) in s.to_dense().iter().enumerate() {
                assert_eq!(
                    x.partial_cmp(&0.0).map(|o| o as i8).unwrap_or(0),
                    s.sign_at(i),
                    "seed {seed}: stand-in sign at {i}"
                );
            }
        }
    }
}

#[test]
fn quantized_i8_dequantizes_within_half_a_level() {
    for seed in 0..CASES {
        let mut rng = signguard::math::seeded_rng(seed ^ 0x9B17);
        let len = rng.gen_range(1usize..300);
        let mag = 10f32.powi(rng.gen_range(-20i32..20));
        let v: Vec<f32> = (0..len).map(|_| rng.gen_range(-mag..mag)).collect();
        let q = QuantizedVec::quantize(&v);
        let back = q.to_dense();
        // |v_i − q_i·scale| ≤ scale/2 for finite inputs (plus f32 slop in
        // the divide/round round-trip).
        let bound = q.scale() * 0.5001 + f32::MIN_POSITIVE;
        for (i, (&x, &y)) in v.iter().zip(&back).enumerate() {
            assert!((x - y).abs() <= bound, "seed {seed} coord {i}: {x} vs {y} (scale {})", q.scale());
        }
    }
}

// ---- Wire-protocol codec (sg-net) --------------------------------------
//
// The networked service's frames carry the determinism contract over the
// wire, so the codec gets the same property treatment as the journal:
// round-trip fidelity over random messages (including adversarial f32 bit
// patterns — NaNs, infinities, denormals), torn-frame truncation at every
// offset (a short read must wait, never mis-decode), and strict rejection
// of any single flipped byte.

use signguard::net::wire::{self, Message, RejectReason};
use signguard::net::FrameBuffer;

fn wire_f32(rng: &mut impl Rng) -> f32 {
    // Raw bit pattern: exercises NaN payloads, ±inf, denormals, -0.0.
    f32::from_bits(rng.gen::<u64>() as u32)
}

fn wire_vec(rng: &mut impl Rng, max_len: usize) -> Vec<f32> {
    (0..rng.gen_range(0usize..max_len.max(1))).map(|_| wire_f32(rng)).collect()
}

fn wire_repr(rng: &mut impl Rng) -> GradientRepr {
    // All three wire representations, over adversarial bit patterns: the
    // codec must round-trip whatever a client could legitimately pack.
    match rng.gen_range(0usize..3) {
        0 => GradientRepr::Dense(wire_vec(rng, 64)),
        1 => GradientRepr::SignNorm(SignNormVec::pack(&wire_vec(rng, 64))),
        _ => GradientRepr::QuantizedI8(QuantizedVec::quantize(&wire_vec(rng, 64))),
    }
}

fn wire_message(rng: &mut impl Rng) -> Message {
    match rng.gen_range(0usize..10) {
        0 => Message::Join { client_id: rng.gen::<u64>() },
        1 => Message::Welcome {
            client_id: rng.gen::<u64>(),
            num_clients: rng.gen::<u64>(),
            round: rng.gen::<u64>(),
            total_rounds: rng.gen::<u64>(),
        },
        2 => Message::FetchModel,
        3 => Message::Model { round: rng.gen::<u64>(), params: wire_vec(rng, 64) },
        4 => Message::SubmitUpdate { round: rng.gen::<u64>(), loss: wire_f32(rng), gradient: wire_repr(rng) },
        5 => Message::SubmitAck { round: rng.gen::<u64>(), pending: rng.gen::<u64>() },
        6 => Message::SubmitReject {
            round: rng.gen::<u64>(),
            reason: [
                RejectReason::Backpressure,
                RejectReason::WrongRound,
                RejectReason::Duplicate,
                RejectReason::UnknownClient,
            ][rng.gen_range(0usize..4)],
        },
        7 => Message::RoundAdvance { round: rng.gen::<u64>(), done: rng.gen_bool(0.5) },
        8 => Message::Bye,
        _ => Message::Error { detail: journal_string(rng, 40) },
    }
}

#[test]
fn wire_round_trips_over_random_messages() {
    // Encoding is canonical, so byte-comparing the re-encoded decode is an
    // exact equality check that is also NaN-safe (PartialEq would not be).
    for seed in 0..CASES {
        let mut rng = signguard::math::seeded_rng(seed ^ 0x3A7_0F00D);
        let msg = wire_message(&mut rng);
        let frame = wire::encode(&msg);
        let mut fb = FrameBuffer::new();
        fb.extend(&frame);
        let decoded = fb
            .next_message()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"))
            .unwrap_or_else(|| panic!("seed {seed}: whole frame did not decode"));
        assert_eq!(wire::encode(&decoded), frame, "seed {seed}: {} altered in flight", msg.name());
        assert!(fb.next_message().expect("clean tail").is_none(), "seed {seed}: phantom trailing message");
    }
}

#[test]
fn wire_streams_reassemble_across_random_chunking() {
    // Many messages, one byte stream, random tear points: every message
    // must come back exactly once, in order, regardless of chunking.
    for seed in [1u64, 23, 58] {
        let mut rng = signguard::math::seeded_rng(seed ^ 0xC0FFEE);
        let msgs: Vec<Message> = (0..12).map(|_| wire_message(&mut rng)).collect();
        let stream: Vec<u8> = msgs.iter().flat_map(wire::encode).collect();
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        let mut pos = 0;
        while pos < stream.len() {
            let n = rng.gen_range(1usize..19).min(stream.len() - pos);
            fb.extend(&stream[pos..pos + n]);
            pos += n;
            while let Some(m) = fb.next_message().unwrap_or_else(|e| panic!("seed {seed}: {e}")) {
                got.push(m);
            }
        }
        let got_bytes: Vec<u8> = got.iter().flat_map(wire::encode).collect();
        assert_eq!(got_bytes, stream, "seed {seed}: reassembly altered the stream");
        assert_eq!(fb.pending_bytes(), 0, "seed {seed}: leftover bytes after clean stream");
    }
}

#[test]
fn wire_torn_frame_waits_at_every_truncation_offset() {
    for seed in [7u64, 19] {
        let mut rng = signguard::math::seeded_rng(seed ^ 0x7012);
        let frame = wire::encode(&wire_message(&mut rng));
        for cut in 0..frame.len() {
            let mut fb = FrameBuffer::new();
            fb.extend(&frame[..cut]);
            assert_eq!(
                fb.next_message()
                    .unwrap_or_else(|e| panic!("seed {seed} cut {cut}: torn prefix errored: {e}")),
                None,
                "seed {seed} cut {cut}: torn frame must wait for more bytes"
            );
        }
    }
}

#[test]
fn wire_any_flipped_byte_is_rejected() {
    for seed in [9u64, 41] {
        let mut rng = signguard::math::seeded_rng(seed ^ 0xF11B);
        let frame = wire::encode(&wire_message(&mut rng));
        for pos in 0..frame.len() {
            for mask in [0x01u8, 0x80] {
                let mut bytes = frame.clone();
                bytes[pos] ^= mask;
                let mut fb = FrameBuffer::new();
                fb.extend(&bytes);
                match fb.next_message() {
                    // Rejected outright, or the flip grew the announced
                    // length and the decoder keeps waiting — either way no
                    // wrong message may surface.
                    Err(_) | Ok(None) => {}
                    Ok(Some(m)) => {
                        panic!("seed {seed}: flip {mask:#04x} at byte {pos} decoded as {}", m.name())
                    }
                }
            }
        }
    }
}

#[test]
fn wire_hostile_declared_sizes_never_allocate() {
    // Attacker-controlled preallocation: for every hostile declared
    // length — a ~4 GiB frame prefix, or an element count far beyond the
    // payload — the decoder must answer Malformed from the bytes already
    // in hand, never reserving the declared size. Seeded fuzz over the
    // hostile count and the limit it is checked against.
    use signguard::net::DecodeLimits;
    for seed in 0..CASES {
        let mut rng = signguard::math::seeded_rng(seed ^ 0x05FE);
        // Hostile frame-length prefix with a valid complement.
        let declared = rng.gen_range((wire::MAX_FRAME as u32 + 1)..=u32::MAX);
        let mut frame = Vec::new();
        frame.extend_from_slice(&declared.to_le_bytes());
        frame.extend_from_slice(&(!declared).to_le_bytes());
        let mut fb = FrameBuffer::new();
        fb.extend(&frame);
        assert!(
            matches!(fb.next_message(), Err(wire::WireError::Malformed(_))),
            "seed {seed}: declared frame length {declared} must be Malformed"
        );

        // A legitimate frame refused by a connection provisioned for a
        // smaller model: the declared dim exceeds the connection cap.
        let dim = rng.gen_range(9usize..64);
        let msg = Message::SubmitUpdate {
            round: 0,
            loss: 0.0,
            gradient: GradientRepr::Dense((0..dim).map(|_| wire_f32(&mut rng)).collect()),
        };
        let mut fb = FrameBuffer::with_limits(DecodeLimits { max_frame: wire::MAX_FRAME, max_dim: 8 });
        fb.extend(&wire::encode(&msg));
        assert!(
            matches!(fb.next_message(), Err(wire::WireError::Malformed(_))),
            "seed {seed}: dim {dim} must be refused at max_dim 8"
        );
    }
}

/// Splits a batch into random contiguous shards (each of 1..=5 members),
/// deterministic per seed — the shapes a hierarchical funnel produces.
fn random_shards(grads: &[Vec<f32>], seed: u64) -> Vec<Vec<Vec<f32>>> {
    let mut rng = signguard::math::seeded_rng(seed);
    let mut shards = Vec::new();
    let mut at = 0;
    while at < grads.len() {
        let take = rng.gen_range(1usize..=5).min(grads.len() - at);
        shards.push(grads[at..at + take].to_vec());
        at += take;
    }
    shards
}

#[test]
fn median_of_medians_composes_within_shard_envelope() {
    // The Rerun composition contract for CoordinateMedian: rerunning the
    // median over per-shard medians stays, coordinate-wise, inside the
    // envelope of the shard medians — and hence inside the population's
    // coordinate range, whatever the shard assignment. This is the
    // documented deviation bound for the hierarchical funnel.
    for seed in 0..CASES {
        let grads = gradient_batch(seed.wrapping_add(0x4D4D));
        let shards = random_shards(&grads, seed ^ 0x5EED);
        let shard_aggs: Vec<Vec<f32>> =
            shards.iter().map(|s| CoordinateMedian::new().aggregate(s).gradient).collect();
        let composed = CoordinateMedian::new().aggregate(&shard_aggs).gradient;
        for j in 0..composed.len() {
            let lo = shard_aggs.iter().map(|g| g[j]).fold(f32::INFINITY, f32::min);
            let hi = shard_aggs.iter().map(|g| g[j]).fold(f32::NEG_INFINITY, f32::max);
            assert!(
                composed[j] >= lo - 1e-5 && composed[j] <= hi + 1e-5,
                "seed {seed} coord {j}: composed median left the shard-median envelope"
            );
            let plo = grads.iter().map(|g| g[j]).fold(f32::INFINITY, f32::min);
            let phi = grads.iter().map(|g| g[j]).fold(f32::NEG_INFINITY, f32::max);
            assert!(
                composed[j] >= plo - 1e-5 && composed[j] <= phi + 1e-5,
                "seed {seed} coord {j}: composed median left the population range"
            );
        }
    }
}

#[test]
fn sharded_signguard_tracks_the_flat_selection() {
    // The RerunSignNorm composition contract for SignGuard: leaves run
    // the full funnel on their shard and forward only packed sign + norm
    // statistics; the root reruns the funnel natively on those. On an
    // honest near-consensus batch (the regime where flat SignGuard
    // provably keeps the majority) the composed aggregate must stay
    // directionally aligned with the flat aggregate (cosine > 0.5) at a
    // comparable magnitude — the documented deviation of the funnel,
    // holding across random shard assignments.
    use signguard::aggregators::{GradientBatch, SignNormVec};
    for seed in 0..CASES {
        let mut rng = signguard::math::seeded_rng(seed ^ 0x51C4);
        let n = rng.gen_range(8usize..20);
        let d = rng.gen_range(16usize..48);
        let base: Vec<f32> =
            (0..d).map(|_| if rng.gen_range(0.0f32..1.0) < 0.5 { 1.0 } else { -1.0 }).collect();
        let grads: Vec<Vec<f32>> =
            (0..n).map(|_| base.iter().map(|b| b + rng.gen_range(-0.2f32..0.2)).collect()).collect();

        let flat = SignGuard::plain(seed).aggregate(&grads).gradient;
        let packed: Vec<SignNormVec> = random_shards(&grads, seed ^ 0x7A3B)
            .iter()
            .map(|s| SignNormVec::pack(&SignGuard::plain(seed).aggregate(s).gradient))
            .collect();
        let composed = SignGuard::plain(seed).aggregate_batch(&GradientBatch::signnorm(&packed)).gradient;

        let flat_norm = vecops::l2_norm(&flat);
        let composed_norm = vecops::l2_norm(&composed);
        assert!(flat_norm > 0.0 && composed_norm > 0.0, "seed {seed}: degenerate aggregate");
        let cos = vecops::dot(&flat, &composed) / (flat_norm * composed_norm);
        assert!(cos > 0.5, "seed {seed}: composed SignGuard diverged from flat (cos {cos})");
        let ratio = composed_norm / flat_norm;
        assert!(
            (0.25..=4.0).contains(&ratio),
            "seed {seed}: composed norm off-scale vs flat (ratio {ratio})"
        );
    }
}
