//! Property-based tests (proptest) on the core invariants of the
//! aggregation rules, filters and data pipeline.

use proptest::prelude::*;
use signguard::aggregators::{
    Aggregator, Bulyan, CoordinateMedian, Mean, MultiKrum, TrimmedMean,
};
use signguard::core::SignGuard;
use signguard::math::vecops;

/// Strategy: a batch of `n ∈ [3, 12]` gradients of dim `d ∈ [2, 24]` with
/// bounded finite values.
fn gradient_batch() -> impl Strategy<Value = Vec<Vec<f32>>> {
    (3usize..12, 2usize..24).prop_flat_map(|(n, d)| {
        proptest::collection::vec(proptest::collection::vec(-100.0f32..100.0, d..=d), n..=n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mean_is_permutation_invariant(grads in gradient_batch(), seed in 0u64..1000) {
        let mut shuffled = grads.clone();
        let mut rng = signguard::math::seeded_rng(seed);
        signguard::math::rng::shuffle(&mut rng, &mut shuffled);
        let a = Mean::new().aggregate(&grads).gradient;
        let b = Mean::new().aggregate(&shuffled).gradient;
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn median_is_permutation_invariant(grads in gradient_batch(), seed in 0u64..1000) {
        let mut shuffled = grads.clone();
        let mut rng = signguard::math::seeded_rng(seed);
        signguard::math::rng::shuffle(&mut rng, &mut shuffled);
        let a = CoordinateMedian::new().aggregate(&grads).gradient;
        let b = CoordinateMedian::new().aggregate(&shuffled).gradient;
        prop_assert_eq!(a, b);
    }

    #[test]
    fn median_within_coordinate_range(grads in gradient_batch()) {
        let out = CoordinateMedian::new().aggregate(&grads).gradient;
        for j in 0..out.len() {
            let lo = grads.iter().map(|g| g[j]).fold(f32::INFINITY, f32::min);
            let hi = grads.iter().map(|g| g[j]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(out[j] >= lo - 1e-5 && out[j] <= hi + 1e-5);
        }
    }

    #[test]
    fn trimmed_mean_within_coordinate_range(grads in gradient_batch()) {
        let k = (grads.len() - 1) / 2;
        let out = TrimmedMean::new(k).aggregate(&grads).gradient;
        for j in 0..out.len() {
            let lo = grads.iter().map(|g| g[j]).fold(f32::INFINITY, f32::min);
            let hi = grads.iter().map(|g| g[j]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(out[j] >= lo - 1e-5 && out[j] <= hi + 1e-5);
        }
    }

    #[test]
    fn identical_gradients_are_a_fixed_point(g in proptest::collection::vec(-50.0f32..50.0, 2..20), n in 3usize..10) {
        let grads = vec![g.clone(); n];
        let rules: Vec<Box<dyn Aggregator>> = vec![
            Box::new(Mean::new()),
            Box::new(CoordinateMedian::new()),
            Box::new(TrimmedMean::new(1)),
            Box::new(MultiKrum::new(1, n - 1)),
            Box::new(Bulyan::new(1)),
        ];
        for mut rule in rules {
            let out = rule.aggregate(&grads).gradient;
            for (x, y) in out.iter().zip(&g) {
                prop_assert!((x - y).abs() < 1e-4, "{} not fixed point", rule.name());
            }
        }
    }

    #[test]
    fn multikrum_selects_requested_count(grads in gradient_batch(), m in 1usize..5) {
        let n = grads.len();
        let sel = MultiKrum::new(1, m).aggregate(&grads).selected.expect("selection");
        prop_assert_eq!(sel.len(), m.min(n));
        // Indices valid and unique.
        let mut sorted = sel.clone();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sel.len());
        prop_assert!(sel.iter().all(|&i| i < n));
    }

    #[test]
    fn signguard_aggregate_norm_bounded_by_median(grads in gradient_batch(), seed in 0u64..100) {
        let norms: Vec<f32> = grads.iter().map(|g| signguard::math::l2_norm(g)).collect();
        let med = signguard::math::median(&norms);
        let out = SignGuard::plain(seed).aggregate(&grads);
        // Mean of norm-clipped vectors cannot exceed the clip bound.
        prop_assert!(signguard::math::l2_norm(&out.gradient) <= med * 1.01 + 1e-4);
    }

    #[test]
    fn signguard_selection_is_valid_subset(grads in gradient_batch(), seed in 0u64..100) {
        let out = SignGuard::plain(seed).aggregate(&grads);
        let sel = out.selected.expect("signguard reports selection");
        prop_assert!(!sel.is_empty());
        prop_assert!(sel.iter().all(|&i| i < grads.len()));
        let sorted = sel.clone();
        sorted.windows(2).for_each(|w| assert!(w[0] < w[1], "selection must be sorted unique"));
    }

    #[test]
    fn clip_norm_never_exceeds_bound(v in proptest::collection::vec(-1e3f32..1e3, 1..50), bound in 0.1f32..10.0) {
        let c = vecops::clip_norm(&v, bound);
        prop_assert!(signguard::math::l2_norm(&c) <= bound * 1.001);
        // Direction preserved.
        if signguard::math::l2_norm(&v) > 0.0 {
            prop_assert!(vecops::cosine_similarity(&v, &c) > 0.999);
        }
    }

    #[test]
    fn sign_fractions_partition_unity(v in proptest::collection::vec(-10.0f32..10.0, 1..200)) {
        let (p, z, n) = vecops::sign_counts(&v);
        prop_assert_eq!(p + z + n, v.len());
    }

    #[test]
    fn partition_iid_conserves(len in 10usize..200, n in 1usize..10, seed in 0u64..100) {
        prop_assume!(len >= n);
        let mut rng = signguard::math::seeded_rng(seed);
        let parts = signguard::data::partition_iid(len, n, &mut rng);
        let mut all: Vec<usize> = parts.into_iter().flatten().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..len).collect::<Vec<_>>());
    }

    #[test]
    fn flip_label_stays_in_range(classes in 2usize..20, l in 0usize..19) {
        prop_assume!(l < classes);
        let f = signguard::data::flip_label(l, classes);
        prop_assert!(f < classes);
        prop_assert_eq!(signguard::data::flip_label(f, classes), l);
    }

    #[test]
    fn lie_z_monotone_in_byzantine_count(n in 10usize..100, m1 in 1usize..20, m2 in 21usize..45) {
        prop_assume!(m2 < n / 2 && m1 < m2);
        let z1 = signguard::attacks::lie_z_max(n, m1);
        let z2 = signguard::attacks::lie_z_max(n, m2);
        prop_assert!(z2 >= z1, "z({n},{m1})={z1} z({n},{m2})={z2}");
    }
}
