//! Numeric verification of the paper's Proposition 1: for a small enough
//! attack factor `z`, the LIE gradient is *closer* to the true averaged
//! gradient than some honest gradient (Eq. 6) and has *higher* cosine
//! similarity (Eq. 7) — i.e. distance- and similarity-based defenses
//! cannot see it. Meanwhile its sign statistics are visibly shifted,
//! which is the observation SignGuard exploits.

use rand::Rng;
use signguard::attacks::{lie_z_max, Lie};
use signguard::math::{cosine_similarity, l2_distance, normal_cdf, seeded_rng, vecops};

/// A population of honest gradients: common signal + heavy per-client
/// noise, mimicking the σ > μ regime the paper observes empirically.
fn honest_population(n: usize, d: usize, noise: f32, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = seeded_rng(seed);
    let signal: Vec<f32> = (0..d).map(|j| (j as f32 * 0.37).sin() * 0.5 + 0.15).collect();
    (0..n).map(|_| signal.iter().map(|&s| s + rng.gen_range(-noise..noise)).collect()).collect()
}

#[test]
fn lie_gradient_is_closer_than_some_honest_gradient() {
    let honest = honest_population(40, 2000, 1.0, 1);
    let dim = 2000;
    let mean = vecops::mean_vector(&honest, dim);
    let lie = Lie::with_z(0.3).craft_single(&honest, 50, 10);

    let d_lie = l2_distance(&lie, &mean);
    let honest_dists: Vec<f32> = honest.iter().map(|g| l2_distance(g, &mean)).collect();
    let max_honest = honest_dists.iter().cloned().fold(0.0f32, f32::max);
    // Eq. (6): ∃ i with ||g_m - mean|| < ||g_i - mean||.
    assert!(d_lie < max_honest, "LIE distance {d_lie} vs max honest {max_honest}");
    // Stronger empirical claim from the proof: the bound is ~z·σ̄ < σ̄, so
    // the LIE gradient beats *most* honest gradients, not just one.
    let beaten = honest_dists.iter().filter(|&&d| d_lie < d).count();
    assert!(beaten > honest.len() / 2, "LIE only beats {beaten}/{} honest gradients", honest.len());
}

#[test]
fn lie_gradient_has_higher_cosine_than_some_honest_gradient() {
    let honest = honest_population(40, 2000, 1.0, 2);
    let dim = 2000;
    let mean = vecops::mean_vector(&honest, dim);
    let lie = Lie::with_z(0.3).craft_single(&honest, 50, 10);

    let c_lie = cosine_similarity(&lie, &mean);
    let honest_cos: Vec<f32> = honest.iter().map(|g| cosine_similarity(g, &mean)).collect();
    let min_honest = honest_cos.iter().cloned().fold(1.0f32, f32::min);
    // Eq. (7): ∃ i with cos(g_m, mean) > cos(g_i, mean).
    assert!(c_lie > min_honest, "LIE cosine {c_lie} vs min honest {min_honest}");
}

#[test]
fn lie_sign_statistics_are_shifted_despite_stealth() {
    // The punchline of Section III: the same LIE gradient that evades
    // distance checks has measurably different sign statistics.
    let honest = honest_population(40, 5000, 0.6, 3);
    let lie = Lie::with_z(1.0).craft_single(&honest, 50, 10);

    let frac_pos = |v: &[f32]| {
        let (p, z, n) = vecops::sign_counts(v);
        p as f32 / (p + z + n) as f32
    };
    let honest_pos: Vec<f32> = honest.iter().map(|g| frac_pos(g)).collect();
    let mean_honest_pos = signguard::math::mean(&honest_pos);
    let honest_spread = signguard::math::std_dev(&honest_pos);
    let lie_pos = frac_pos(&lie);
    // The malicious positive-fraction sits many honest standard deviations
    // below the honest mean.
    assert!(
        mean_honest_pos - lie_pos > 4.0 * honest_spread,
        "honest pos {mean_honest_pos}±{honest_spread}, LIE pos {lie_pos}"
    );
}

#[test]
fn z_max_formula_matches_eq2() {
    // Eq. (2): z_max = sup { z : φ(z) < (n - ⌊n/2+1⌋) / (n - m) }.
    for (n, m) in [(50usize, 10usize), (50, 20), (100, 24), (25, 5)] {
        let z = lie_z_max(n, m);
        let s = (n as f64 - (n as f64 / 2.0 + 1.0).floor()) / (n - m) as f64;
        assert!((normal_cdf(z) - s).abs() < 1e-6, "n={n} m={m}");
        // Slightly larger z must violate the bound.
        assert!(normal_cdf(z + 1e-3) > s);
    }
}

#[test]
fn larger_byzantine_fraction_permits_larger_z() {
    let z_small = lie_z_max(50, 5);
    let z_big = lie_z_max(50, 20);
    assert!(z_big > z_small);
}
