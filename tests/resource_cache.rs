//! The resource-cache contract, end to end: a cache-hit cell sees exactly
//! the bytes an uncached cell would have generated, keys never collide
//! across task names or data seeds, and a grid's worth of concurrent
//! cells triggers exactly one generation per key.

use std::collections::HashSet;
use std::sync::Arc;

use signguard::attacks::SignFlip;
use signguard::core::SignGuard;
use signguard::fl::{tasks, FlConfig, PartitionCache, RunResult, Simulator, Task, TaskCache};
use signguard::runtime::{Engine, GridRunner, RunPlan};

fn quick_cfg() -> FlConfig {
    FlConfig {
        num_clients: 10,
        byzantine_fraction: 0.2,
        batch_size: 8,
        epochs: 1,
        seed: 5,
        ..FlConfig::default()
    }
}

fn run_once(task: Task) -> RunResult {
    let mut sim =
        Simulator::new(task, quick_cfg(), Box::new(SignGuard::plain(0)), Some(Box::new(SignFlip::new())));
    sim.run()
}

#[test]
fn cache_hit_is_bit_identical_to_uncached_build() {
    let cache = TaskCache::new();
    let _prime = cache.get("mlp", 7);
    let cached = cache.get("mlp", 7);
    assert_eq!((cache.misses(), cache.hits()), (1, 1), "second get must be a hit");

    let fresh = tasks::by_name("mlp", 7);
    assert_eq!(cached.train.fingerprint(), fresh.train.fingerprint(), "train bytes diverge");
    assert_eq!(cached.test.fingerprint(), fresh.test.fingerprint(), "test bytes diverge");

    let a = run_once(cached);
    let b = run_once(fresh);
    assert_eq!(a.rounds, b.rounds, "cached vs uncached: per-round metrics diverge");
    assert_eq!(a.accuracy_curve, b.accuracy_curve);
    assert_eq!(a.selection, b.selection);
    assert_eq!(a.best_accuracy.to_bits(), b.best_accuracy.to_bits());
    assert_eq!(a.final_accuracy.to_bits(), b.final_accuracy.to_bits());
}

#[test]
fn keys_do_not_collide_across_tasks_or_data_seeds() {
    let cache = TaskCache::new();
    let keys: [(&str, u64); 4] = [("mlp", 7), ("mlp", 8), ("fashion", 7), ("mnist", 7)];
    let fps: Vec<u64> = keys.iter().map(|&(name, seed)| cache.get(name, seed).train.fingerprint()).collect();
    let distinct: HashSet<u64> = fps.iter().copied().collect();
    assert_eq!(distinct.len(), keys.len(), "colliding fingerprints: {fps:x?}");
    assert_eq!((cache.len(), cache.misses(), cache.hits()), (4, 4, 0));

    // The snapshot is the sorted, reproducible view the sweep report embeds.
    let snapshot = cache.snapshot();
    assert_eq!(snapshot.len(), 4);
    assert!(snapshot.windows(2).all(|w| w[0] <= w[1]), "snapshot must be sorted");
}

#[test]
fn partition_cache_hit_is_bit_identical_to_uncached_build() {
    // Two simulators drawing their shards from one PartitionCache must
    // reproduce the uncached (per-simulator partitioning) run exactly.
    let tasks_cache = TaskCache::new();
    let parts = PartitionCache::new();
    let run_with = |parts: &PartitionCache| -> RunResult {
        let mut sim = Simulator::with_resources(
            tasks_cache.get("mlp", 7),
            quick_cfg(),
            Box::new(SignGuard::plain(0)),
            Some(Box::new(SignFlip::new())),
            Engine::sequential(),
            parts,
        );
        sim.run()
    };
    let first = run_with(&parts);
    let second = run_with(&parts);
    assert_eq!((parts.misses(), parts.hits()), (1, 1), "second simulator shares the shards");
    let uncached = run_with(&PartitionCache::new());
    for (label, r) in [("cache hit", &second), ("uncached", &uncached)] {
        assert_eq!(first.rounds, r.rounds, "{label}: per-round metrics diverge");
        assert_eq!(first.accuracy_curve, r.accuracy_curve, "{label}");
        assert_eq!(first.best_accuracy.to_bits(), r.best_accuracy.to_bits(), "{label}");
    }
}

#[test]
fn partition_cache_separates_schemes_and_seeds() {
    use signguard::fl::Partitioning;
    let task = tasks::by_name("mlp", 3);
    let parts = PartitionCache::new();
    let a = parts.get(&task.train, Partitioning::Iid, 10, 1);
    let b = parts.get(&task.train, Partitioning::NonIid { s: 0.5 }, 10, 1);
    let c = parts.get(&task.train, Partitioning::Iid, 10, 2);
    assert_eq!(parts.len(), 3);
    assert!(!Arc::ptr_eq(&a, &b) && !Arc::ptr_eq(&a, &c));
    // Every shard list is a permutation of the dataset.
    for shards in [&a, &b, &c] {
        let mut all: Vec<usize> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..task.train.len()).collect::<Vec<_>>());
    }
}

#[test]
fn concurrent_grid_cells_share_one_generation() {
    let cache = TaskCache::new();
    let mut plan: RunPlan<usize> = RunPlan::new(1);
    for i in 0..8 {
        let cache = cache.clone();
        plan.cell(format!("cell-{i}"), move |_ctx| {
            let task = cache.get("mlp", 7);
            Arc::as_ptr(&task.train) as usize
        });
    }
    let report = GridRunner::new(4).run(plan);
    let ptrs: HashSet<usize> = report.cells.iter().map(|c| c.output).collect();
    assert_eq!(ptrs.len(), 1, "all cells must share one generated dataset");
    assert_eq!(cache.misses(), 1, "exactly one cell pays the generation");
    assert_eq!(cache.hits(), 7);
}
