//! The engine's determinism contract, end to end: for a fixed seed,
//! parallel execution (`parallelism > 1`) is **bit-identical** to
//! sequential execution — per-round metrics, selection accounting,
//! accuracy curves, everything — under **every client schedule** (sync,
//! straggler, FedBuf-style buffered async: the async modes run on a seeded
//! virtual clock, so asynchrony is simulated deterministically rather than
//! wall-clock racy).
//!
//! The parallel thread counts under test default to `1, 2, 3, 8` (odd
//! counts exercise ragged shard splits) and can be overridden with the
//! `SG_THREADS` environment variable — a single count or a comma-separated
//! list, e.g. `SG_THREADS=3` or `SG_THREADS=1,2,3,8`. CI's smoke job loops
//! the suite over each count separately.

use signguard::aggregators::{Aggregator, Bulyan, CenteredClip, DnC, GeoMed, Mean, MultiKrum, TrimmedMean};
use signguard::attacks::SignFlip;
use signguard::core::SignGuard;
use signguard::fl::{tasks, FlConfig, RunResult, Schedule, Simulator};
use signguard::runtime::{Engine, GridRunner, RunPlan};

/// Thread counts for the parallel side of every seq-vs-par comparison.
fn par_thread_counts() -> Vec<usize> {
    match std::env::var("SG_THREADS") {
        Ok(list) => list
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(|t| t.parse().unwrap_or_else(|_| panic!("SG_THREADS: bad thread count {t:?}")))
            .collect(),
        Err(_) => vec![1, 2, 3, 8],
    }
}

fn quick_cfg(seed: u64) -> FlConfig {
    FlConfig {
        num_clients: 10,
        byzantine_fraction: 0.2,
        batch_size: 8,
        epochs: 2,
        seed,
        ..FlConfig::default()
    }
}

fn assert_bit_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.rounds, b.rounds, "{what}: per-round metrics diverge");
    assert_eq!(a.accuracy_curve, b.accuracy_curve, "{what}: accuracy curves diverge");
    assert_eq!(a.selection, b.selection, "{what}: selection stats diverge");
    assert_eq!(a.best_accuracy.to_bits(), b.best_accuracy.to_bits(), "{what}: best accuracy diverges");
    assert_eq!(a.final_accuracy.to_bits(), b.final_accuracy.to_bits(), "{what}: final accuracy diverges");
}

fn run_on(engine: Engine, gar: Box<dyn Aggregator>, seed: u64) -> RunResult {
    run_scheduled(engine, gar, seed, Schedule::Sync)
}

fn run_scheduled(engine: Engine, gar: Box<dyn Aggregator>, seed: u64, schedule: Schedule) -> RunResult {
    let mut sim = Simulator::with_engine(
        tasks::mlp_task(seed),
        FlConfig { schedule, ..quick_cfg(seed) },
        gar,
        Some(Box::new(SignFlip::new())),
        engine,
    );
    sim.run()
}

#[test]
fn parallel_simulator_matches_sequential_signguard() {
    // SignGuard exercises every sharded path: per-gradient norms, the
    // parallel sign-feature pass, and the chunked clipped aggregation.
    let seq = run_on(Engine::sequential(), Box::new(SignGuard::plain(3)), 11);
    for threads in par_thread_counts() {
        let par = run_on(Engine::parallel(threads), Box::new(SignGuard::plain(3)), 11);
        assert_bit_identical(&seq, &par, &format!("SignGuard @ {threads} threads"));
    }
}

#[test]
fn parallel_simulator_matches_sequential_mean_and_trmean() {
    type GarCtor = fn() -> Box<dyn Aggregator>;
    let rules: [(&str, GarCtor); 2] =
        [("Mean", || Box::new(Mean::new())), ("TrMean", || Box::new(TrimmedMean::new(2)))];
    for (name, gar) in rules {
        let seq = run_on(Engine::sequential(), gar(), 5);
        for threads in par_thread_counts() {
            let par = run_on(Engine::parallel(threads), gar(), 5);
            assert_bit_identical(&seq, &par, &format!("{name} @ {threads} threads"));
        }
    }
}

#[test]
fn parallel_simulator_matches_sequential_pairwise_family() {
    // The O(n²·d) family: Krum/Multi-Krum and Bulyan shard the pairwise
    // distance matrix, GeoMed the Weiszfeld inner loop. quick_cfg has
    // n = 10 clients with f = 2 Byzantine.
    type GarCtor = fn() -> Box<dyn Aggregator>;
    let rules: [(&str, GarCtor); 4] = [
        ("Krum", || Box::new(MultiKrum::krum(2))),
        ("Multi-Krum", || Box::new(MultiKrum::new(2, 8))),
        ("Bulyan", || Box::new(Bulyan::new(2))),
        ("GeoMed", || Box::new(GeoMed::new().with_max_iter(10))),
    ];
    for (name, gar) in rules {
        let seq = run_on(Engine::sequential(), gar(), 13);
        for threads in par_thread_counts() {
            let par = run_on(Engine::parallel(threads), gar(), 13);
            assert_bit_identical(&seq, &par, &format!("{name} @ {threads} threads"));
        }
    }
}

/// Deterministic synthetic gradients spanning several executor chunks, with
/// one gross outlier so selection rules have something to reject.
fn wide_gradients(n: usize, dim: usize) -> Vec<Vec<f32>> {
    let mut g: Vec<Vec<f32>> = (0..n)
        .map(|i| (0..dim).map(|j| ((i * dim + j) as f32 * 0.377).cos() * (1.0 + (j % 9) as f32)).collect())
        .collect();
    for x in g[0].iter_mut() {
        *x *= 1e3;
    }
    g
}

#[test]
fn pairwise_family_aggregate_bits_match_sequential() {
    // Aggregator-level (no simulator): the exact gradient vector and the
    // selected set must match the sequential executor bit for bit at every
    // thread count. dim spans multiple REDUCE_BLOCK chunks and n = 20
    // clients give 190 pairs — several PAIR_CHUNK windows.
    use sg_math::vecops::REDUCE_BLOCK;
    let grads = wide_gradients(20, 2 * REDUCE_BLOCK + 33);
    type GarCtor = fn() -> Box<dyn Aggregator>;
    let rules: [(&str, GarCtor); 4] = [
        ("Krum", || Box::new(MultiKrum::krum(3))),
        ("Multi-Krum", || Box::new(MultiKrum::new(3, 15))),
        ("Bulyan", || Box::new(Bulyan::new(3))),
        ("GeoMed", || Box::new(GeoMed::new().with_max_iter(15))),
    ];
    for (name, ctor) in rules {
        let seq_out = ctor().aggregate(&grads);
        for threads in par_thread_counts() {
            let mut gar = ctor();
            gar.set_executor(Engine::parallel(threads).executor());
            let par_out = gar.aggregate(&grads);
            assert_eq!(par_out.selected, seq_out.selected, "{name} @ {threads} threads: selection diverges");
            assert_eq!(par_out.gradient.len(), seq_out.gradient.len());
            for (j, (a, b)) in seq_out.gradient.iter().zip(&par_out.gradient).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{name} @ {threads} threads: coordinate {j} diverges ({a} vs {b})"
                );
            }
        }
    }
}

#[test]
fn straggler_schedule_matches_sequential() {
    // The straggler schedule's virtual clock lives on the driver thread:
    // per-client delay draws, the model-history lookups and the pending
    // buffer are all thread-count independent, so the whole run — idle
    // steps, staleness stats, selection accounting — must be bit-identical
    // at any parallelism. SignGuard exercises every sharded kernel on the
    // stale-gradient batches.
    let schedule = Schedule::Straggler { slow_fraction: 0.4, max_delay: 3 };
    let seq = run_scheduled(Engine::sequential(), Box::new(SignGuard::plain(3)), 31, schedule);
    assert!(
        seq.rounds.iter().any(|m| m.applied && m.max_staleness > 0),
        "the seeded draw must include stragglers for this test to bite"
    );
    for threads in par_thread_counts() {
        let par = run_scheduled(Engine::parallel(threads), Box::new(SignGuard::plain(3)), 31, schedule);
        assert_bit_identical(&seq, &par, &format!("Straggler/SignGuard @ {threads} threads"));
    }
    // And with a blending rule, for schedule coverage independent of the
    // defense's selection machinery.
    let seq = run_scheduled(Engine::sequential(), Box::new(Mean::new()), 32, schedule);
    for threads in par_thread_counts() {
        let par = run_scheduled(Engine::parallel(threads), Box::new(Mean::new()), 32, schedule);
        assert_bit_identical(&seq, &par, &format!("Straggler/Mean @ {threads} threads"));
    }
}

#[test]
fn async_buffered_schedule_matches_sequential() {
    // FedBuf-style buffering: idle steps while the buffer fills, whole-
    // buffer drains with mixed staleness, and restart draws in batch
    // order — all deterministic, so bit-identical at any thread count.
    let schedule = Schedule::AsyncBuffered { k: 6, max_delay: 3 };
    let seq = run_scheduled(Engine::sequential(), Box::new(SignGuard::plain(5)), 33, schedule);
    assert!(
        seq.rounds.iter().any(|m| !m.applied) && seq.rounds.iter().any(|m| m.applied),
        "the buffered schedule must mix idle and apply steps"
    );
    for threads in par_thread_counts() {
        let par = run_scheduled(Engine::parallel(threads), Box::new(SignGuard::plain(5)), 33, schedule);
        assert_bit_identical(&seq, &par, &format!("AsyncBuffered/SignGuard @ {threads} threads"));
    }
}

#[test]
fn executor_ported_rules_aggregate_bits_match_sequential() {
    // DnC (subsampled spectral projections) and CenteredClip (clip loop)
    // are the latest rules ported onto the executor seam: exact output
    // bits at every thread count, including DnC's seeded coordinate
    // subsampling and CClip's cross-round carried state.
    use sg_math::vecops::REDUCE_BLOCK;
    let grads = wide_gradients(16, REDUCE_BLOCK + 257);
    let seq_dnc = DnC::new(3).with_seed(7).with_subsample_dim(600).aggregate(&grads);
    for threads in par_thread_counts() {
        let mut gar = DnC::new(3).with_seed(7).with_subsample_dim(600);
        gar.set_executor(Engine::parallel(threads).executor());
        let par = gar.aggregate(&grads);
        assert_eq!(par.selected, seq_dnc.selected, "DnC @ {threads} threads: selection diverges");
        for (j, (a, b)) in seq_dnc.gradient.iter().zip(&par.gradient).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "DnC @ {threads} threads: coordinate {j}");
        }
    }

    let mut seq_cc = CenteredClip::new(3.0).with_iters(3);
    let seq_rounds: Vec<Vec<f32>> = (0..3).map(|_| seq_cc.aggregate(&grads).gradient).collect();
    for threads in par_thread_counts() {
        let mut gar = CenteredClip::new(3.0).with_iters(3);
        gar.set_executor(Engine::parallel(threads).executor());
        for (round, expected) in seq_rounds.iter().enumerate() {
            let got = gar.aggregate(&grads).gradient;
            for (j, (a, b)) in expected.iter().zip(&got).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "CClip @ {threads} threads round {round} coord {j}");
            }
        }
    }
}

#[test]
fn kernel_widths_bit_identical_at_every_thread_count() {
    // Width (SIMD-wide vs scalar, the `SG_SIMD` axis) and thread count
    // (`SG_THREADS`) are orthogonal dispatch axes in `sg_math::kernels`;
    // the determinism contract is bit-identity across BOTH. The explicit
    // `*_with(Width, …)` variants prove scalar ≡ wide for every ported
    // kernel; routing the blocked kernels through executors at 1 and 4
    // threads proves the sharded callers inherit it. (The end-to-end
    // `SG_SIMD=scalar` vs default comparison runs as CI's `simd-smoke`
    // job, since the process-wide width is latched once at startup.)
    use sg_math::kernels::{self, Width};
    use sg_math::vecops::REDUCE_BLOCK;

    let g = wide_gradients(10, 2 * REDUCE_BLOCK + 193);
    let dim = g[0].len();
    let mut signy = g[5].clone();
    for (j, x) in signy.iter_mut().enumerate() {
        // Sprinkle zeros and a NaN so the sign kernels see all three signs.
        if j % 7 == 0 {
            *x = 0.0;
        }
        if j == 100 {
            *x = f32::NAN;
        }
    }

    // Reductions: scalar and wide must agree on every output bit.
    assert_eq!(
        kernels::l2_norm_sq_f64_with(Width::Scalar, &g[0]).to_bits(),
        kernels::l2_norm_sq_f64_with(Width::Wide, &g[0]).to_bits(),
        "l2_norm_sq width divergence"
    );
    assert_eq!(
        kernels::dot_f64_with(Width::Scalar, &g[1], &g[2]).to_bits(),
        kernels::dot_f64_with(Width::Wide, &g[1], &g[2]).to_bits(),
        "dot width divergence"
    );
    assert_eq!(
        kernels::l2_distance_sq_f64_with(Width::Scalar, &g[3], &g[4]).to_bits(),
        kernels::l2_distance_sq_f64_with(Width::Wide, &g[3], &g[4]).to_bits(),
        "l2_distance width divergence"
    );
    assert_eq!(
        kernels::sign_counts_with(Width::Scalar, &signy),
        kernels::sign_counts_with(Width::Wide, &signy),
        "sign_counts width divergence"
    );
    let (mut wb, mut wz) = (Vec::new(), Vec::new());
    let (mut sb, mut sz) = (Vec::new(), Vec::new());
    kernels::pack_signs_into_with(Width::Wide, &signy, &mut wb, &mut wz);
    kernels::pack_signs_into_with(Width::Scalar, &signy, &mut sb, &mut sz);
    assert_eq!((wb, wz), (sb, sz), "pack_signs width divergence");

    // The blocked mean through the executor seam: both widths, at 1 and 4
    // threads, all four combinations bit-identical.
    let mut reference: Option<Vec<u32>> = None;
    for threads in [1usize, 4] {
        let exec = Engine::parallel(threads).executor();
        for width in [Width::Scalar, Width::Wide] {
            let mut out = vec![0.0f32; dim];
            exec.run_chunks(&mut out, REDUCE_BLOCK, &|ci, chunk| {
                kernels::mean_chunk_with(width, &g, ci * REDUCE_BLOCK, chunk);
            });
            let bits: Vec<u32> = out.iter().map(|x| x.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => {
                    assert_eq!(&bits, r, "mean_chunk diverges at {threads} threads / {width:?}")
                }
            }
        }
    }
}

#[test]
fn engine_parallelism_one_matches_plain_new() {
    // `Simulator::new` (the legacy constructor) and an explicit
    // single-thread engine are the same code path.
    let mut a = Simulator::new(
        tasks::mlp_task(7),
        quick_cfg(7),
        Box::new(SignGuard::plain(0)),
        Some(Box::new(SignFlip::new())),
    );
    let mut b = Simulator::with_engine(
        tasks::mlp_task(7),
        quick_cfg(7),
        Box::new(SignGuard::plain(0)),
        Some(Box::new(SignFlip::new())),
        Engine::parallel(1),
    );
    assert_bit_identical(&a.run(), &b.run(), "new vs parallelism=1");
}

fn grid_plan() -> RunPlan<RunResult> {
    let mut plan = RunPlan::new(99);
    for (attack_on, gar_kind) in [
        (false, "mean"),
        (true, "mean"),
        (true, "signguard"),
        (true, "trmean"),
        (false, "signguard"),
        (true, "mean"),
    ] {
        plan.cell(format!("{gar_kind}/attack={attack_on}"), move |ctx| {
            let gar: Box<dyn Aggregator> = match gar_kind {
                "mean" => Box::new(Mean::new()),
                "trmean" => Box::new(TrimmedMean::new(2)),
                _ => Box::new(SignGuard::plain(ctx.seed)),
            };
            let attack = attack_on.then(|| Box::new(SignFlip::new()) as _);
            let mut sim = Simulator::new(tasks::mlp_task(ctx.seed), quick_cfg(ctx.seed), gar, attack);
            sim.run()
        });
    }
    plan
}

#[test]
fn grid_runner_parallel_matches_sequential() {
    let seq = GridRunner::new(1).run(grid_plan());
    let par = GridRunner::new(4).run(grid_plan());
    assert_eq!(seq.cells.len(), par.cells.len());
    for (a, b) in seq.cells.iter().zip(&par.cells) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.label, b.label);
        assert_eq!(a.seed, b.seed, "seed schedule must not depend on execution order");
        assert_bit_identical(&a.output, &b.output, &a.label);
    }
}

#[test]
fn two_level_grid_matches_sequential() {
    // Nested execution: cells run their simulators on `ctx.engine()` — the
    // engine carved from the grid's own pool, so client training and the
    // aggregators' sharded kernels run on the same threads that fan the
    // cells out — while sharing one generated dataset via a TaskCache.
    // The whole sweep must be bit-identical at any `--jobs` width.
    use signguard::fl::TaskCache;
    let build = |cache: TaskCache| -> RunPlan<RunResult> {
        let mut plan = RunPlan::new(77);
        for (gar_kind, attack_on) in
            [("signguard", true), ("mean", true), ("trmean", false), ("signguard", false), ("mean", false)]
        {
            let cache = cache.clone();
            plan.cell(format!("{gar_kind}/attack={attack_on}"), move |ctx| {
                let gar: Box<dyn Aggregator> = match gar_kind {
                    "mean" => Box::new(Mean::new()),
                    "trmean" => Box::new(TrimmedMean::new(2)),
                    _ => Box::new(SignGuard::plain(3)),
                };
                let attack = attack_on.then(|| Box::new(SignFlip::new()) as _);
                let task = cache.get("mlp", 7);
                let mut sim = Simulator::with_engine(task, quick_cfg(9), gar, attack, ctx.engine().clone());
                sim.run()
            });
        }
        plan
    };
    let seq = GridRunner::new(1).run(build(TaskCache::new()));
    for jobs in par_thread_counts() {
        let par = GridRunner::new(jobs).run(build(TaskCache::new()));
        assert_eq!(seq.cells.len(), par.cells.len());
        for (a, b) in seq.cells.iter().zip(&par.cells) {
            assert_eq!(a.seed, b.seed, "nested run must keep the seed schedule");
            assert_bit_identical(&a.output, &b.output, &format!("{} @ {jobs} jobs (two-level)", a.label));
        }
    }
}

#[test]
fn grid_seed_schedule_derives_distinct_cell_seeds() {
    let report = GridRunner::new(2).run(grid_plan());
    let mut seeds: Vec<u64> = report.cells.iter().map(|c| c.seed).collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), report.cells.len(), "every cell gets its own seed");
}
