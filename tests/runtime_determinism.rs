//! The engine's determinism contract, end to end: for a fixed seed,
//! parallel execution (`parallelism > 1`) is **bit-identical** to
//! sequential execution — per-round metrics, selection accounting,
//! accuracy curves, everything.

use signguard::aggregators::{Aggregator, Mean, TrimmedMean};
use signguard::attacks::SignFlip;
use signguard::core::SignGuard;
use signguard::fl::{tasks, FlConfig, RunResult, Simulator};
use signguard::runtime::{Engine, GridRunner, RunPlan};

fn quick_cfg(seed: u64) -> FlConfig {
    FlConfig {
        num_clients: 10,
        byzantine_fraction: 0.2,
        batch_size: 8,
        epochs: 2,
        seed,
        ..FlConfig::default()
    }
}

fn assert_bit_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.rounds, b.rounds, "{what}: per-round metrics diverge");
    assert_eq!(a.accuracy_curve, b.accuracy_curve, "{what}: accuracy curves diverge");
    assert_eq!(a.selection, b.selection, "{what}: selection stats diverge");
    assert_eq!(a.best_accuracy.to_bits(), b.best_accuracy.to_bits(), "{what}: best accuracy diverges");
    assert_eq!(a.final_accuracy.to_bits(), b.final_accuracy.to_bits(), "{what}: final accuracy diverges");
}

fn run_on(engine: Engine, gar: Box<dyn Aggregator>, seed: u64) -> RunResult {
    let mut sim = Simulator::with_engine(
        tasks::mlp_task(seed),
        quick_cfg(seed),
        gar,
        Some(Box::new(SignFlip::new())),
        engine,
    );
    sim.run()
}

#[test]
fn parallel_simulator_matches_sequential_signguard() {
    // SignGuard exercises every sharded path: per-gradient norms, the
    // parallel sign-feature pass, and the chunked clipped aggregation.
    let seq = run_on(Engine::sequential(), Box::new(SignGuard::plain(3)), 11);
    for threads in [2, 4] {
        let par = run_on(Engine::parallel(threads), Box::new(SignGuard::plain(3)), 11);
        assert_bit_identical(&seq, &par, &format!("SignGuard @ {threads} threads"));
    }
}

#[test]
fn parallel_simulator_matches_sequential_mean_and_trmean() {
    type GarCtor = fn() -> Box<dyn Aggregator>;
    let rules: [(&str, GarCtor); 2] =
        [("Mean", || Box::new(Mean::new())), ("TrMean", || Box::new(TrimmedMean::new(2)))];
    for (name, gar) in rules {
        let seq = run_on(Engine::sequential(), gar(), 5);
        let par = run_on(Engine::parallel(4), gar(), 5);
        assert_bit_identical(&seq, &par, name);
    }
}

#[test]
fn engine_parallelism_one_matches_plain_new() {
    // `Simulator::new` (the legacy constructor) and an explicit
    // single-thread engine are the same code path.
    let mut a = Simulator::new(
        tasks::mlp_task(7),
        quick_cfg(7),
        Box::new(SignGuard::plain(0)),
        Some(Box::new(SignFlip::new())),
    );
    let mut b = Simulator::with_engine(
        tasks::mlp_task(7),
        quick_cfg(7),
        Box::new(SignGuard::plain(0)),
        Some(Box::new(SignFlip::new())),
        Engine::parallel(1),
    );
    assert_bit_identical(&a.run(), &b.run(), "new vs parallelism=1");
}

fn grid_plan() -> RunPlan<RunResult> {
    let mut plan = RunPlan::new(99);
    for (attack_on, gar_kind) in [
        (false, "mean"),
        (true, "mean"),
        (true, "signguard"),
        (true, "trmean"),
        (false, "signguard"),
        (true, "mean"),
    ] {
        plan.cell(format!("{gar_kind}/attack={attack_on}"), move |ctx| {
            let gar: Box<dyn Aggregator> = match gar_kind {
                "mean" => Box::new(Mean::new()),
                "trmean" => Box::new(TrimmedMean::new(2)),
                _ => Box::new(SignGuard::plain(ctx.seed)),
            };
            let attack = attack_on.then(|| Box::new(SignFlip::new()) as _);
            let mut sim = Simulator::new(tasks::mlp_task(ctx.seed), quick_cfg(ctx.seed), gar, attack);
            sim.run()
        });
    }
    plan
}

#[test]
fn grid_runner_parallel_matches_sequential() {
    let seq = GridRunner::new(1).run(grid_plan());
    let par = GridRunner::new(4).run(grid_plan());
    assert_eq!(seq.cells.len(), par.cells.len());
    for (a, b) in seq.cells.iter().zip(&par.cells) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.label, b.label);
        assert_eq!(a.seed, b.seed, "seed schedule must not depend on execution order");
        assert_bit_identical(&a.output, &b.output, &a.label);
    }
}

#[test]
fn grid_seed_schedule_derives_distinct_cell_seeds() {
    let report = GridRunner::new(2).run(grid_plan());
    let mut seeds: Vec<u64> = report.cells.iter().map(|c| c.seed).collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), report.cells.len(), "every cell gets its own seed");
}
