//! Kill/resume harness for the crash-safe sweep journal.
//!
//! The contract under test: a sweep interrupted after `k` of `n` cells
//! (via the fault-injection hook in `GridRunner`) and then resumed
//! produces a consolidated JSON **byte-identical** to an uninterrupted
//! run, re-executing only the non-journaled cells — at `--jobs 1` and
//! `--jobs 4` alike. Stale journals (edited plan, different seed, smoke
//! vs full, doctored data seed) must be refused by fingerprint, naming
//! the offending section, with no partial rows leaking into a report.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use sg_bench::journal;
use sg_bench::sweep::{consolidated_json, run_sections, JournalCfg, SweepError, SweepOpts, ALL_EXPERIMENTS};

/// Cells to complete before the injected crash.
const K: usize = 7;

fn smoke_opts(seed: u64) -> SweepOpts {
    SweepOpts { smoke: true, ..SweepOpts::new(seed) }
}

fn all_selected() -> Vec<String> {
    ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect()
}

fn tmp_journal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sg-sweep-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

/// Asserts byte equality with a useful first-divergence message instead of
/// dumping two whole reports.
fn assert_same_bytes(a: &str, b: &str, what: &str) {
    if a == b {
        return;
    }
    let at = a.bytes().zip(b.bytes()).position(|(x, y)| x != y).unwrap_or(a.len().min(b.len()));
    let lo = at.saturating_sub(40);
    panic!(
        "{what}: reports diverge at byte {at} (lens {} vs {}):\n  a: …{}…\n  b: …{}…",
        a.len(),
        b.len(),
        &a[lo..(at + 40).min(a.len())],
        &b[lo..(at + 40).min(b.len())]
    );
}

#[test]
fn interrupted_then_resumed_sweep_is_byte_identical() {
    let selected = all_selected();

    // Uninterrupted reference (jobs 1, no journal) — the bytes every
    // resumed run must reproduce exactly.
    let o_ref = smoke_opts(42);
    let reference = run_sections(&selected, &o_ref, 1, &JournalCfg::none()).expect("reference sweep");
    let ref_json = consolidated_json(&o_ref, &reference.results);
    let total = reference.total_cells;
    assert!(total > K + 1, "smoke grid must be larger than the fault point");
    assert_eq!(reference.executed, total);
    assert_eq!(reference.hydrated, 0);

    for jobs in [1usize, 4] {
        let path = tmp_journal(&format!("kill-resume-jobs{jobs}.journal"));
        std::fs::remove_file(&path).ok();

        // Crash after exactly K journaled cells.
        let crash = catch_unwind(AssertUnwindSafe(|| {
            let o = smoke_opts(42);
            let jc = JournalCfg { path: Some(path.clone()), resume: false, fault_after: Some(K) };
            let _ = run_sections(&selected, &o, jobs, &jc);
        }));
        assert!(crash.is_err(), "jobs {jobs}: the injected fault must abort the sweep");

        // The journal holds exactly the first K plan cells, in plan order,
        // regardless of how the workers interleaved.
        let parsed = journal::parse(&std::fs::read(&path).expect("journal bytes")).expect("parse journal");
        assert_eq!(parsed.cells.len(), K, "jobs {jobs}");
        assert_eq!(parsed.torn_bytes, 0, "jobs {jobs}: every append is fsync'd whole");
        for (i, cell) in parsed.cells.iter().enumerate() {
            assert_eq!(cell.index as usize, i, "jobs {jobs}: journal must be a plan-order prefix");
        }

        // Resume: only the remainder executes, and the report bytes match.
        let o = smoke_opts(42);
        let resumed = run_sections(&selected, &o, jobs, &JournalCfg::at(&path, true)).expect("resumed sweep");
        assert_eq!(resumed.hydrated, K, "jobs {jobs}: journaled cells must hydrate, not re-run");
        assert_eq!(resumed.executed, total - K, "jobs {jobs}: only non-journaled cells re-execute");
        let resumed_json = consolidated_json(&o, &resumed.results);
        assert_same_bytes(&ref_json, &resumed_json, &format!("jobs {jobs}"));

        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn resuming_a_completed_journal_executes_nothing() {
    let selected = vec!["table2".to_string(), "async".to_string()];
    let path = tmp_journal("completed.journal");
    std::fs::remove_file(&path).ok();

    let o = smoke_opts(42);
    let full = run_sections(&selected, &o, 2, &JournalCfg::at(&path, false)).expect("journaled sweep");
    let full_json = consolidated_json(&o, &full.results);
    assert_eq!(full.executed, full.total_cells);

    let o = smoke_opts(42);
    let again = run_sections(&selected, &o, 2, &JournalCfg::at(&path, true)).expect("resume");
    assert_eq!(again.executed, 0, "a completed journal leaves nothing to run");
    assert_eq!(again.hydrated, full.total_cells);
    assert_same_bytes(&full_json, &consolidated_json(&o, &again.results), "completed resume");

    std::fs::remove_file(&path).ok();
}

/// Journals a small sweep, then asserts that resuming with `selected`,
/// `opts` refuses with a message containing `expect_msg`.
fn assert_stale(
    journal_selected: &[&str],
    resume_selected: &[&str],
    resume_opts: SweepOpts,
    expect_msg: &str,
    name: &str,
) {
    let path = tmp_journal(name);
    std::fs::remove_file(&path).ok();
    let journal_selected: Vec<String> = journal_selected.iter().map(|s| s.to_string()).collect();
    let o = smoke_opts(42);
    run_sections(&journal_selected, &o, 2, &JournalCfg::at(&path, false)).expect("journaled sweep");

    let resume_selected: Vec<String> = resume_selected.iter().map(|s| s.to_string()).collect();
    let err = run_sections(&resume_selected, &resume_opts, 2, &JournalCfg::at(&path, true))
        .err()
        .unwrap_or_else(|| panic!("{name}: stale journal must be refused"));
    let msg = err.to_string();
    assert!(matches!(err, SweepError::Stale { .. }), "{name}: expected Stale, got: {msg}");
    assert!(msg.contains(expect_msg), "{name}: error `{msg}` should mention `{expect_msg}`");
    std::fs::remove_file(&path).ok();
}

#[test]
fn stale_journal_extra_section_is_refused_by_name() {
    assert_stale(
        &["table2", "async"],
        &["table2"],
        smoke_opts(42),
        "extra section(s) `async`",
        "stale-extra.journal",
    );
}

#[test]
fn stale_journal_missing_section_is_refused_by_name() {
    assert_stale(
        &["table2"],
        &["table2", "fig4"],
        smoke_opts(42),
        "section(s) `fig4` missing",
        "stale-missing.journal",
    );
}

#[test]
fn stale_journal_cell_count_change_is_refused_by_name() {
    // The same section planned smoke vs full has a different cell count
    // (and task list); the error must name the section, not just mismatch.
    assert_stale(
        &["fig4"],
        &["fig4"],
        SweepOpts::new(42), // full-size plan against a smoke journal
        "section `fig4` changed cell count",
        "stale-count.journal",
    );
}

#[test]
fn stale_journal_seed_change_is_refused() {
    assert_stale(&["table2"], &["table2"], smoke_opts(43), "master seed changed", "stale-seed.journal");
}

#[test]
fn stale_journal_doctored_data_seed_is_refused() {
    // A journal whose header claims a different dataset-generation seed
    // (as if DATA_SEED or the generator changed underneath it).
    let selected = vec!["table2".to_string()];
    let path = tmp_journal("stale-dataseed.journal");
    std::fs::remove_file(&path).ok();
    let o = smoke_opts(42);
    run_sections(&selected, &o, 2, &JournalCfg::at(&path, false)).expect("journaled sweep");

    let parsed = journal::parse(&std::fs::read(&path).expect("read")).expect("parse");
    let mut header = parsed.header;
    header.data_seed += 1;
    std::fs::write(&path, journal::encode(&header, &parsed.cells)).expect("rewrite");

    let o = smoke_opts(42);
    let err = run_sections(&selected, &o, 2, &JournalCfg::at(&path, true)).expect_err("must refuse");
    assert!(err.to_string().contains("data seed changed"), "got: {err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn stale_journal_doctored_code_fingerprint_is_refused() {
    // A journal written by a different build of the binary (simulated by
    // doctoring the stored executable digest) must be refused even though
    // the plan shape is identical — old-code cells and new-code cells
    // must never mix in one report.
    let selected = vec!["table2".to_string()];
    let path = tmp_journal("stale-codefp.journal");
    std::fs::remove_file(&path).ok();
    let o = smoke_opts(42);
    run_sections(&selected, &o, 2, &JournalCfg::at(&path, false)).expect("journaled sweep");

    let parsed = journal::parse(&std::fs::read(&path).expect("read")).expect("parse");
    let mut header = parsed.header;
    header.code_fp ^= 1;
    std::fs::write(&path, journal::encode(&header, &parsed.cells)).expect("rewrite");

    let o = smoke_opts(42);
    let err = run_sections(&selected, &o, 2, &JournalCfg::at(&path, true)).expect_err("must refuse");
    assert!(err.to_string().contains("binary changed"), "got: {err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn torn_header_resume_starts_fresh_instead_of_failing() {
    // A crash in the window between journal creation and the header's
    // fsync leaves a torn header: zero recoverable cells. That is
    // "nothing to resume", not damage — the sweep must start fresh and
    // leave a valid journal behind, with no manual delete needed.
    let selected = vec!["table2".to_string()];
    let path = tmp_journal("torn-header.journal");
    std::fs::write(&path, &journal::MAGIC[..6]).expect("write torn header");

    let o = smoke_opts(42);
    let out = run_sections(&selected, &o, 2, &JournalCfg::at(&path, true)).expect("fresh start");
    assert_eq!(out.executed, out.total_cells, "nothing could hydrate from a torn header");
    assert_eq!(out.hydrated, 0);
    let parsed = journal::parse(&std::fs::read(&path).expect("read")).expect("journal now valid");
    assert_eq!(parsed.cells.len(), out.total_cells);
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_journal_is_refused_not_truncated() {
    // A flipped byte in a *complete* record is damage, not a torn tail:
    // resume must fail loudly rather than silently dropping cells.
    let selected = vec!["table2".to_string()];
    let path = tmp_journal("corrupt.journal");
    std::fs::remove_file(&path).ok();
    let o = smoke_opts(42);
    run_sections(&selected, &o, 2, &JournalCfg::at(&path, false)).expect("journaled sweep");

    let mut bytes = std::fs::read(&path).expect("read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).expect("corrupt");

    let o = smoke_opts(42);
    let err = run_sections(&selected, &o, 2, &JournalCfg::at(&path, true)).expect_err("must refuse");
    assert!(
        matches!(err, SweepError::Journal(journal::JournalError::Corrupt { .. }))
            || err.to_string().contains("corrupt"),
        "got: {err}"
    );
    std::fs::remove_file(&path).ok();
}
