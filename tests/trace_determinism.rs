//! Determinism contract of the sg-obs layer: tracing is observation only.
//!
//! The consolidated JSON of an `exp_all --smoke`-equivalent sweep must be
//! **byte-identical** with the trace sink attached vs. the registry left
//! disabled, at `--jobs 1` and `--jobs 4` alike — spans, counters and
//! histograms never feed back into cell outputs, row ordering or report
//! formatting. The emitted JSONL must also parse (`validate_jsonl`),
//! carry an `"end"` trailer and contain stage-level spans for the cells.
//!
//! The whole contract lives in ONE `#[test]` because the sg-obs registry
//! is process-global: a second test enabling tracing concurrently would
//! race the first one's sweep inside the same test binary.

use std::path::PathBuf;

use sg_bench::sweep::{consolidated_json, run_sections, JournalCfg, SweepOpts, ALL_EXPERIMENTS};

fn smoke_opts(seed: u64) -> SweepOpts {
    SweepOpts { smoke: true, ..SweepOpts::new(seed) }
}

fn all_selected() -> Vec<String> {
    ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect()
}

fn tmp_trace(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sg-trace-determinism-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

/// Byte-equality assert with a first-divergence window instead of two
/// whole reports.
fn assert_same_bytes(a: &str, b: &str, what: &str) {
    if a == b {
        return;
    }
    let at = a.bytes().zip(b.bytes()).position(|(x, y)| x != y).unwrap_or(a.len().min(b.len()));
    let lo = at.saturating_sub(40);
    panic!(
        "{what}: reports diverge at byte {at} (lens {} vs {}):\n  a: …{}…\n  b: …{}…",
        a.len(),
        b.len(),
        &a[lo..(at + 40).min(a.len())],
        &b[lo..(at + 40).min(b.len())]
    );
}

#[test]
fn traced_sweep_report_is_byte_identical_to_untraced() {
    let selected = all_selected();

    for jobs in [1usize, 4] {
        // Untraced reference: registry disabled, every probe inert.
        assert!(!sg_obs::enabled(), "jobs {jobs}: registry must start disabled");
        let o = smoke_opts(42);
        let plain = run_sections(&selected, &o, jobs, &JournalCfg::none()).expect("untraced sweep");
        let plain_json = consolidated_json(&o, &plain.results);
        assert!(plain.total_cells > 0);

        // Traced run: full JSONL sink attached for the whole sweep.
        let path = tmp_trace(&format!("jobs{jobs}.jsonl"));
        std::fs::remove_file(&path).ok();
        sg_obs::init_trace(&path).expect("attach trace sink");
        let o = smoke_opts(42);
        let traced = run_sections(&selected, &o, jobs, &JournalCfg::none()).expect("traced sweep");
        let traced_json = consolidated_json(&o, &traced.results);
        sg_obs::finish().expect("flush trace");

        assert_same_bytes(&plain_json, &traced_json, &format!("jobs {jobs}: traced vs untraced"));

        // The trace itself: well-formed JSONL, terminated, and carrying a
        // span event per grid cell at minimum (stage spans push it higher).
        let text = std::fs::read_to_string(&path).expect("read trace");
        let stats = sg_obs::validate_jsonl(&text).expect("trace must be valid JSONL");
        assert!(stats.terminated, "jobs {jobs}: trace must end with the \"end\" trailer");
        assert!(
            stats.spans >= traced.total_cells,
            "jobs {jobs}: expected at least one span per cell ({} cells), got {} spans",
            traced.total_cells,
            stats.spans
        );
        std::fs::remove_file(&path).ok();
    }
}
