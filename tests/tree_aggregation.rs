//! The hierarchical-aggregation contract (`sg-net`'s tree module): a
//! two-level loopback tree — leaves streaming their shards from the
//! virtual population, a root [`FlService`] composing shard updates —
//! is deterministic at any thread count, invariant to latency seeds,
//! and for exactly-composable rules (Mean) **bit-identical** to the
//! flat run over the same participants.
//!
//! Thread counts honor `SG_THREADS` exactly as `runtime_determinism.rs`
//! does; CI's `tree-smoke` job loops over 1 and 4.

use std::sync::Arc;

use signguard::aggregators::{Aggregator, Mean};
use signguard::attacks::{Attack, SignFlip};
use signguard::core::SignGuard;
use signguard::fl::{tasks, FlConfig, PartitionCache, Task, VirtualPopulation};
use signguard::net::{run_flat_virtual, run_tree_loopback, run_tree_tcp, ServiceReport, TreeTopology};
use signguard::runtime::Engine;

const ROUNDS: usize = 3;

fn thread_counts() -> Vec<usize> {
    match std::env::var("SG_THREADS") {
        Ok(list) => list
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(|t| t.parse().unwrap_or_else(|_| panic!("SG_THREADS: bad thread count {t:?}")))
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

fn engine_for(threads: usize) -> Engine {
    if threads <= 1 {
        Engine::sequential()
    } else {
        Engine::parallel(threads)
    }
}

fn tree_cfg(seed: u64) -> FlConfig {
    FlConfig {
        num_clients: 16,
        byzantine_fraction: 0.25,
        batch_size: 8,
        epochs: 2,
        seed,
        ..FlConfig::default()
    }
}

/// Task, population and 4-leaf topology (shards of 4, full
/// participation) shared by both arms of a comparison.
fn fixture(seed: u64, attack: Option<&dyn Attack>) -> (Task, FlConfig, TreeTopology, Arc<VirtualPopulation>) {
    let task = tasks::mlp_task(seed);
    let cfg = tree_cfg(seed);
    let topo = TreeTopology::new(cfg.num_clients, 4, 4, cfg.seed);
    let pop = Arc::new(VirtualPopulation::build(&task, &cfg, attack, &PartitionCache::new()));
    (task, cfg, topo, pop)
}

fn tree_run(
    seed: u64,
    gar_factory: &dyn Fn() -> Box<dyn Aggregator>,
    attack_factory: &dyn Fn() -> Option<Box<dyn Attack>>,
    engine: &Engine,
    latency_seed: u64,
    max_latency: u64,
) -> ServiceReport {
    let probe = attack_factory();
    let (task, cfg, topo, pop) = fixture(seed, probe.as_deref());
    run_tree_loopback(
        &task,
        &cfg,
        &topo,
        ROUNDS,
        &pop,
        gar_factory,
        attack_factory,
        engine,
        latency_seed,
        max_latency,
    )
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn tree_mean_composes_bit_identical_to_flat() {
    // The ExactSum contract: leaves forward canonical tree sums, the root
    // recombines in shard order and scales once — the composed model must
    // equal the flat mean over the same participants bit for bit. No
    // adversary: a flat attack sees the whole round, a tree attack only
    // its shard, so the arms are only comparable with the attack off.
    let gar_factory = || -> Box<dyn Aggregator> { Box::new(Mean::new()) };
    let no_attack = || -> Option<Box<dyn Attack>> { None };
    let (task, cfg, topo, pop) = fixture(51, None);
    let flat =
        run_flat_virtual(&task, &cfg, &topo, ROUNDS, &pop, &gar_factory, &no_attack, &Engine::sequential());
    assert_eq!(flat.rounds, ROUNDS);
    for threads in thread_counts() {
        let engine = engine_for(threads);
        let report = tree_run(51, &gar_factory, &no_attack, &engine, 9, 5);
        assert_eq!(report.rounds, ROUNDS, "@{threads} threads: tree round count");
        assert_eq!(
            bits(&report.final_params),
            bits(&flat.final_params),
            "@{threads} threads: composed mean diverges from the flat mean"
        );
        assert_eq!(report.rejects, 0, "@{threads} threads: loopback tree run rejected a submit");
    }
}

#[test]
fn tree_run_is_thread_invariant() {
    // Full-report equality across thread counts — model bits, losses,
    // message accounting, everything. SignGuard under a shard-local
    // sign-flip exercises the packed (RerunSignNorm) funnel end to end.
    let gar_factory = || -> Box<dyn Aggregator> { Box::new(SignGuard::plain(4)) };
    let attack_factory = || -> Option<Box<dyn Attack>> { Some(Box::new(SignFlip::new())) };
    let reference = tree_run(52, &gar_factory, &attack_factory, &Engine::sequential(), 13, 7);
    assert_eq!(reference.rounds, ROUNDS);
    assert!(reference.final_params.iter().all(|p| p.is_finite()));
    for threads in thread_counts() {
        let report = tree_run(52, &gar_factory, &attack_factory, &engine_for(threads), 13, 7);
        assert_eq!(report, reference, "@{threads} threads: tree run diverged");
    }
}

#[test]
fn tree_final_model_is_latency_seed_invariant() {
    // The root ingests each completed round ascending by shard id, so the
    // virtual clock's arrival order must not move the model.
    let gar_factory = || -> Box<dyn Aggregator> { Box::new(SignGuard::plain(4)) };
    let attack_factory = || -> Option<Box<dyn Attack>> { Some(Box::new(SignFlip::new())) };
    let engine = Engine::sequential();
    let base = tree_run(53, &gar_factory, &attack_factory, &engine, 1, 5);
    for (latency_seed, max_latency) in [(2u64, 5u64), (77, 1), (123, 19)] {
        let other = tree_run(53, &gar_factory, &attack_factory, &engine, latency_seed, max_latency);
        assert_eq!(
            bits(&base.final_params),
            bits(&other.final_params),
            "latency seed {latency_seed} / max {max_latency} moved the tree's final model"
        );
        assert_eq!(bits(&base.round_losses), bits(&other.round_losses));
    }
}

#[test]
fn tree_runs_are_reproducible() {
    let gar_factory = || -> Box<dyn Aggregator> { Box::new(SignGuard::plain(2)) };
    let attack_factory = || -> Option<Box<dyn Attack>> { Some(Box::new(SignFlip::new())) };
    let engine = Engine::sequential();
    let a = tree_run(54, &gar_factory, &attack_factory, &engine, 9, 7);
    let b = tree_run(54, &gar_factory, &attack_factory, &engine, 9, 7);
    assert_eq!(a, b);
}

#[test]
fn ragged_population_composes_and_converges() {
    // 13 clients in shards of 4 → three full shards plus a ragged one;
    // the canonical reduction tree admits the ragged trailing block, so
    // the ExactSum identity must survive it.
    let task = tasks::mlp_task(55);
    let cfg = FlConfig { num_clients: 13, ..tree_cfg(55) };
    let topo = TreeTopology::new(cfg.num_clients, 4, 4, cfg.seed);
    assert_eq!(topo.num_leaves(), 4);
    assert_eq!(topo.total_participants(), 13);
    let pop = Arc::new(VirtualPopulation::build(&task, &cfg, None, &PartitionCache::new()));
    let gar_factory = || -> Box<dyn Aggregator> { Box::new(Mean::new()) };
    let no_attack = || -> Option<Box<dyn Attack>> { None };
    let engine = Engine::sequential();
    let flat = run_flat_virtual(&task, &cfg, &topo, ROUNDS, &pop, &gar_factory, &no_attack, &engine);
    let report = run_tree_loopback(&task, &cfg, &topo, ROUNDS, &pop, &gar_factory, &no_attack, &engine, 3, 4);
    assert_eq!(bits(&report.final_params), bits(&flat.final_params), "ragged shard broke ExactSum");
}

#[test]
fn sampled_participation_composes_bit_identical_to_flat() {
    // 2 participants sampled per 4-wide shard: the flat arm samples the
    // same per-shard ids (same RNG draws), so the ExactSum identity must
    // hold for partial participation too — with the root scaling by the
    // number of *participants*, not the population.
    let task = tasks::mlp_task(56);
    let cfg = tree_cfg(56);
    let topo = TreeTopology::new(cfg.num_clients, 4, 2, cfg.seed);
    assert_eq!(topo.total_participants(), 8);
    let pop = Arc::new(VirtualPopulation::build(&task, &cfg, None, &PartitionCache::new()));
    let gar_factory = || -> Box<dyn Aggregator> { Box::new(Mean::new()) };
    let no_attack = || -> Option<Box<dyn Attack>> { None };
    let engine = Engine::sequential();
    let flat = run_flat_virtual(&task, &cfg, &topo, ROUNDS, &pop, &gar_factory, &no_attack, &engine);
    let report =
        run_tree_loopback(&task, &cfg, &topo, ROUNDS, &pop, &gar_factory, &no_attack, &engine, 21, 6);
    assert_eq!(bits(&report.final_params), bits(&flat.final_params), "sampled participation broke ExactSum");
}

#[test]
fn tcp_tree_fan_in_matches_loopback_bit_for_bit() {
    // Real sockets, kernel-scheduled leaf arrival order, a tight submit
    // queue so backpressure fires — the root still canonicalizes by shard
    // id, so the final model must reproduce the loopback tree run of the
    // same seeds exactly.
    let gar_factory = || -> Box<dyn Aggregator> { Box::new(SignGuard::plain(4)) };
    let attack_factory = || -> Option<Box<dyn Attack>> { Some(Box::new(SignFlip::new())) };
    let engine = Engine::sequential();
    let reference = tree_run(57, &gar_factory, &attack_factory, &engine, 3, 5);
    assert_eq!(reference.rounds, ROUNDS);

    let probe = attack_factory();
    let (task, cfg, topo, pop) = fixture(57, probe.as_deref());
    let report = run_tree_tcp(&task, &cfg, &topo, ROUNDS, &pop, gar_factory, attack_factory, &engine, 2);
    assert_eq!(report.rounds, reference.rounds, "TCP tree applied a different round count");
    assert_eq!(
        bits(&report.final_params),
        bits(&reference.final_params),
        "TCP tree's final model diverges from the loopback tree"
    );
    assert_eq!(
        bits(&report.round_losses),
        bits(&reference.round_losses),
        "per-round shard-mean losses diverge over the socket"
    );
}
