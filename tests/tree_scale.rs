//! Scale contract of the hierarchical funnel: a round over a
//! 10⁵-virtual-client population must touch only the *sampled*
//! participants — peak resident client state is bounded by shard sample
//! size × leaf count, never by the population. Asserted through the
//! sg-obs counters (`virtual.materialized`, `tree.leaf_rounds`) rather
//! than allocator introspection, so the bound is part of the observable
//! contract.
//!
//! One `#[test]` only: the sg-obs registry is process-global, and this
//! file must own it for the duration of the traced run.

use std::sync::Arc;

use signguard::aggregators::{Aggregator, Mean};
use signguard::attacks::Attack;
use signguard::fl::{tasks, FlConfig, PartitionCache, VirtualPopulation};
use signguard::net::{run_tree_loopback, TreeTopology};
use signguard::runtime::Engine;

/// Extracts `{"ev":"counter","name":"<name>","value":N}` from the trace.
fn counter_value(trace: &str, name: &str) -> u64 {
    let needle = format!("\"name\":\"{name}\",\"value\":");
    let line = trace
        .lines()
        .find(|l| l.contains("\"ev\":\"counter\"") && l.contains(&needle))
        .unwrap_or_else(|| panic!("counter {name} missing from trace"));
    let at = line.find(&needle).expect("needle just matched") + needle.len();
    line[at..].chars().take_while(char::is_ascii_digit).collect::<String>().parse().expect("counter value")
}

#[test]
fn hundred_thousand_client_round_stays_shard_bounded() {
    let population = 100_000usize;
    let shard_size = 1024usize; // power of two
    let participation = 4usize; // sampled participants per shard
    let rounds = 1usize;

    let task = tasks::mlp_task(61);
    let cfg = FlConfig {
        num_clients: population,
        byzantine_fraction: 0.0,
        batch_size: 8,
        epochs: 1,
        seed: 61,
        ..FlConfig::default()
    };
    let topo = TreeTopology::new(population, shard_size, participation, cfg.seed);
    assert_eq!(topo.num_leaves(), population.div_ceil(shard_size));
    let pop = Arc::new(VirtualPopulation::build(&task, &cfg, None, &PartitionCache::new()));
    assert!(pop.is_oversubscribed(), "10^5 clients over a ~2k-sample task must share data");

    let dir = std::env::temp_dir().join(format!("sg-tree-scale-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("trace.jsonl");
    std::fs::remove_file(&path).ok();
    sg_obs::init_trace(&path).expect("attach trace sink");

    let gar_factory = || -> Box<dyn Aggregator> { Box::new(Mean::new()) };
    let no_attack = || -> Option<Box<dyn Attack>> { None };
    let engine = Engine::parallel(4);
    let report = run_tree_loopback(&task, &cfg, &topo, rounds, &pop, &gar_factory, &no_attack, &engine, 5, 3);
    sg_obs::finish().expect("flush trace");

    assert_eq!(report.rounds, rounds);
    assert_eq!(report.rejects, 0);
    assert!(report.final_params.iter().all(|p| p.is_finite()));

    let trace = std::fs::read_to_string(&path).expect("read trace");
    std::fs::remove_file(&path).ok();

    // The funnel's memory contract: exactly one materialization per
    // sampled participant per round — bounded by the topology, more than
    // two orders of magnitude below the population.
    let materialized = counter_value(&trace, "virtual.materialized");
    let budget = (topo.total_participants() * rounds) as u64;
    assert_eq!(materialized, budget, "leaves materialized clients beyond the sampled participants");
    assert!(
        (materialized as usize) < population / 100,
        "materialization ({materialized}) not shard-bounded vs population ({population})"
    );
    let leaf_rounds = counter_value(&trace, "tree.leaf_rounds");
    assert_eq!(leaf_rounds, (topo.num_leaves() * rounds) as u64, "each leaf aggregates once per round");
}
